"""Vectorized (whole-array) execution of stage-III SparseTIR programs.

The scalar :class:`~repro.runtime.executor.Executor` interprets a lowered loop
nest one element at a time; this module provides a *fast path* that executes
the same program with whole-array NumPy operations.  It works by batched
interpretation: every loop of a nest is expanded into flat *lane* arrays (one
entry per iteration-space point, in serial loop order), every expression is
evaluated once over all lanes, and stores become a single NumPy scatter
(``ufunc.at`` for reductions, fancy assignment otherwise).

This covers the loop nests the pipeline produces for SpMM, SDDMM and
pruned SpMM over CSR / ELL / HYB / BSR, the batched (multi-head) attention
programs whose leading head axis is just one more lane dimension, and the
scatter-accumulate nests of RGMS and sparse convolution — gather loads
through ``indices`` buffers, segment-style reduction into the output,
fused-axis row recovery via ``sparse_row_of_position``, pointwise in-place
rescaling (``B[e] = B[e] * r``), and structural-zero masking for padded ELL
slots and ``sparse_coord_to_pos`` misses.

Exact-equivalence guarantees relative to the interpreter:

* lanes are materialised in serial loop order, and reduction stores use
  ``np.add.at`` which accumulates unbuffered in lane order, so floating-point
  results are bit-identical to the element-by-element interpreter;
* structural zeros are tracked with validity masks instead of exceptions:
  an invalid index makes a load evaluate to 0 and a store drop its lane,
  matching the interpreter's ``_StructuralZero`` semantics.

Programs the batcher cannot prove safe (a store whose value reads a buffer
written elsewhere in the same nest, lane-count blowups, unknown intrinsics)
raise :class:`UnsupportedProgram`; callers such as
:meth:`repro.core.codegen.build.Kernel.run` fall back to the interpreter, so
the fast path is never a correctness risk.
"""

from __future__ import annotations

import operator
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.axes import (
    Axis,
    DenseFixedAxis,
    DenseVariableAxis,
    SparseFixedAxis,
    SparseVariableAxis,
)
from ..core.expr import (
    Add,
    And,
    BinaryOp,
    BufferLoad,
    Call,
    Cast,
    Div,
    EQ,
    Expr,
    FloatImm,
    FloorDiv,
    FloorMod,
    GE,
    GT,
    IntImm,
    LE,
    LT,
    Max,
    Min,
    Mul,
    NE,
    Not,
    Or,
    Select,
    StringImm,
    Sub,
    Var,
    structural_equal,
)
from ..core.nputils import MAX_LANES, ragged_arange
from ..core.program import STAGE_LOOP, PrimFunc
from ..core.stage2.lowering import BINARY_SEARCH, ROW_UPPER_BOUND
from ..core.stmt import (
    AssertStmt,
    Block,
    BufferStore,
    Evaluate,
    ForLoop,
    IfThenElse,
    LetStmt,
    SeqStmt,
    Stmt,
    collect_buffer_loads,
    collect_buffer_stores,
)


class UnsupportedProgram(Exception):
    """The program contains a construct the vectorized executor cannot batch."""


__all__ = [
    "MAX_LANES",
    "UnsupportedProgram",
    "VectorizedExecutor",
    "coords_to_positions",
    "sorted_axis_keys",
]

_BINOP_TABLE = {
    Add: operator.add,
    Sub: operator.sub,
    Mul: operator.mul,
    Div: operator.truediv,
    FloorDiv: operator.floordiv,
    FloorMod: operator.mod,
    Min: np.minimum,
    Max: np.maximum,
    LT: operator.lt,
    LE: operator.le,
    GT: operator.gt,
    GE: operator.ge,
    EQ: operator.eq,
    NE: operator.ne,
    And: np.logical_and,
    Or: np.logical_or,
}

_UNARY_CALLS = {"exp": np.exp, "tanh": np.tanh, "sqrt": np.sqrt, "log": np.log, "abs": np.abs}


class _Lanes:
    """One value (and optional structural-zero mask) per active lane."""

    __slots__ = ("data", "invalid")

    def __init__(self, data: Any, invalid: Optional[np.ndarray] = None):
        self.data = data
        self.invalid = invalid


def _merge_invalid(*masks: Optional[np.ndarray]) -> Optional[np.ndarray]:
    merged: Optional[np.ndarray] = None
    for mask in masks:
        if mask is None:
            continue
        merged = mask if merged is None else (merged | mask)
    return merged


class VectorizedExecutor:
    """Executes one stage-III PrimFunc with whole-array NumPy operations.

    Raises :class:`UnsupportedProgram` (at construction or at :meth:`run`
    time) when the program falls outside the vectorizable fragment; the
    caller is expected to fall back to the scalar interpreter.
    """

    def __init__(self, func: PrimFunc):
        if func.stage != STAGE_LOOP:
            raise ValueError(f"VectorizedExecutor expects a stage-III program, got {func.stage}")
        self.func = func
        self.axes_by_name: Dict[str, Axis] = {axis.name: axis for axis in func.axes}
        self.buffers_by_name = {
            buf.name: buf for buf in list(func.buffers) + list(func.aux_buffers)
        }
        self.flat_by_name = {fb.name: fb for fb in func.flat_buffers}
        # Per-store update forms decided by the safety analysis:
        # id(store) -> ("add" | "mul", residual expression), or None for a
        # plain store.
        self._reduction_residual: Dict[int, Optional[Tuple[str, Expr]]] = {}
        # Per-axis search structures for batched coordinate_to_position.
        self._axis_lookup_cache: Dict[int, Tuple[np.ndarray, np.ndarray, int]] = {}
        self._analyze()

    # -- safety analysis -------------------------------------------------------
    def _analyze(self) -> None:
        """Prove each top-level loop nest safe to batch.

        Within one nest, nothing may *read* a buffer the nest *writes*, with
        a single exception: a self-update ``B[e] = B[e] + r`` (or the
        pointwise ``B[e] = B[e] * r``) may read its own target at exactly the
        stored index (that load becomes the ``np.add.at`` / ``np.multiply.at``
        accumulator).  Any other read of a written buffer — in
        a residual (even at another index of the same buffer), a plain store
        value, a store index, a loop bound, a condition or a let binding —
        could observe a different interleaving than the serial interpreter,
        so it is rejected and the caller falls back.  Two store statements
        may not target the same buffer either.
        """
        body = self.func.body
        nests = list(body.stmts) if isinstance(body, SeqStmt) else [body]
        for nest in nests:
            # Init statements run in their own pass (pass 1), so they form a
            # separate store group from the compute-pass stores; written
            # buffers of *both* passes are off-limits for ambient reads.
            written_all = {s.buffer.name for s in collect_buffer_stores(nest)}
            ambient_reads = {
                load.buffer.name for load in _ambient_loads(nest)
            }
            conflicting = ambient_reads & written_all
            if conflicting:
                raise UnsupportedProgram(
                    "loop bounds, conditions or indices read buffers written in "
                    f"the same nest: {sorted(conflicting)}"
                )
            for stores in (_pass_stores(nest, "init"), _pass_stores(nest, "compute")):
                self._analyze_nest(stores, written_all)

    def _analyze_nest(self, stores: List[BufferStore], written_all: set) -> None:
        seen: Dict[str, int] = {}
        for store in stores:
            seen[store.buffer.name] = seen.get(store.buffer.name, 0) + 1
        for store in stores:
            if len(store.indices) != 1:
                raise UnsupportedProgram("stage-III stores must use a single flat index")
            residual = self._match_reduction(store)
            value_reads = {
                load.buffer.name
                for load in collect_buffer_loads(
                    BufferStore(store.buffer, store.indices, residual[1])
                    if residual is not None
                    else store
                )
            }
            conflicting = value_reads & written_all
            if conflicting:
                kind = "residual" if residual is not None else "value"
                raise UnsupportedProgram(
                    f"store {kind} reads buffers written in the same nest: "
                    f"{sorted(conflicting)}"
                )
            if seen[store.buffer.name] > 1:
                raise UnsupportedProgram(
                    f"multiple stores to {store.buffer.name!r} in one nest"
                )
            self._reduction_residual[id(store)] = residual

    def _match_reduction(self, store: BufferStore) -> Optional[Tuple[str, Expr]]:
        """Match a self-update ``B[e] = B[e] (+|*) r``; return the op and ``r``.

        ``+`` is the reduction accumulator (``np.add.at``); ``*`` is the
        pointwise in-place rescale emitted e.g. by the attention-score
        ``1/sqrt(d)`` scaling nest (``np.multiply.at``).  Both ``ufunc.at``
        forms apply lanes unbuffered in serial order, preserving
        bit-exactness with the interpreter.
        """
        value = store.value
        if not isinstance(value, (Add, Mul)):
            return None
        op = "add" if isinstance(value, Add) else "mul"
        for load, residual in ((value.a, value.b), (value.b, value.a)):
            if (
                isinstance(load, BufferLoad)
                and load.buffer.name == store.buffer.name
                and len(load.indices) == 1
                and structural_equal(load.indices[0], store.indices[0])
            ):
                return op, residual
        return None

    # -- public API ------------------------------------------------------------
    def run(self, bindings: Optional[Mapping[str, np.ndarray]] = None) -> Dict[str, np.ndarray]:
        """Execute the program and return the array for every buffer."""
        from .executor import prepare_arrays

        arrays = prepare_arrays(self.func, bindings or {})
        # Two-pass reduction-init strategy, mirroring the interpreter.
        self._exec(self.func.body, {}, 1, arrays, mode="init")
        self._exec(self.func.body, {}, 1, arrays, mode="compute")
        return arrays

    # -- statement execution ---------------------------------------------------
    def _exec(
        self,
        stmt: Stmt,
        env: Dict[Var, np.ndarray],
        n: int,
        arrays: Dict[str, np.ndarray],
        mode: str,
    ) -> None:
        if n == 0:
            return
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self._exec(s, env, n, arrays, mode)
            return
        if isinstance(stmt, ForLoop):
            new_env, total = self._expand_loop(stmt, env, n, arrays)
            if total:
                self._exec(stmt.body, new_env, total, arrays, mode)
            return
        if isinstance(stmt, Block):
            if mode == "init":
                if stmt.init is not None:
                    self._exec(stmt.init, env, n, arrays, mode="compute")
                self._exec_init_only(stmt.body, env, n, arrays)
            else:
                self._exec(stmt.body, env, n, arrays, mode)
            return
        if mode == "init":
            return
        if isinstance(stmt, BufferStore):
            self._exec_store(stmt, env, n, arrays)
            return
        if isinstance(stmt, IfThenElse):
            cond = self._eval(stmt.condition, env, n, arrays)
            mask = np.asarray(cond.data, dtype=bool)
            if mask.ndim == 0:
                mask = np.full(n, bool(mask))
            if cond.invalid is not None:
                mask = mask & ~cond.invalid
            then_n = int(mask.sum())
            if then_n:
                self._exec(stmt.then_case, _mask_env(env, mask), then_n, arrays, mode)
            if stmt.else_case is not None:
                inverse = ~mask
                else_n = n - then_n
                if else_n:
                    self._exec(stmt.else_case, _mask_env(env, inverse), else_n, arrays, mode)
            return
        if isinstance(stmt, LetStmt):
            value = self._eval(stmt.value, env, n, arrays)
            if value.invalid is not None and bool(np.any(value.invalid)):
                raise UnsupportedProgram("structural zero inside a let binding")
            env[stmt.var] = _as_lanes(value.data, n)
            self._exec(stmt.body, env, n, arrays, mode)
            env.pop(stmt.var, None)
            return
        if isinstance(stmt, AssertStmt):
            self._exec(stmt.body, env, n, arrays, mode)
            return
        if isinstance(stmt, Evaluate):
            return
        raise UnsupportedProgram(f"cannot batch statement of type {type(stmt).__name__}")

    def _exec_init_only(
        self, stmt: Stmt, env: Dict[Var, np.ndarray], n: int, arrays: Dict[str, np.ndarray]
    ) -> None:
        """Init pass: walk loops/blocks but execute only block inits."""
        from .executor import _contains_init

        if n == 0:
            return
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self._exec_init_only(s, env, n, arrays)
            return
        if isinstance(stmt, ForLoop):
            if not _contains_init(stmt.body):
                return
            new_env, total = self._expand_loop(stmt, env, n, arrays)
            if total:
                self._exec_init_only(stmt.body, new_env, total, arrays)
            return
        if isinstance(stmt, Block):
            if stmt.init is not None:
                self._exec(stmt.init, env, n, arrays, mode="compute")
            self._exec_init_only(stmt.body, env, n, arrays)
            return
        if isinstance(stmt, IfThenElse):
            self._exec_init_only(stmt.then_case, env, n, arrays)
            if stmt.else_case is not None:
                self._exec_init_only(stmt.else_case, env, n, arrays)
            return
        return

    def _expand_loop(
        self, loop: ForLoop, env: Dict[Var, np.ndarray], n: int, arrays: Dict[str, np.ndarray]
    ) -> Tuple[Dict[Var, np.ndarray], int]:
        """Expand one loop level: each lane becomes ``extent`` child lanes."""
        start = self._eval(loop.start, env, n, arrays)
        extent = self._eval(loop.extent, env, n, arrays)
        if start.invalid is not None or extent.invalid is not None:
            raise UnsupportedProgram("structural zero inside loop bounds")

        if np.ndim(start.data) == 0 and np.ndim(extent.data) == 0:
            count = max(int(extent.data), 0)
            total = n * count
            if total > MAX_LANES:
                raise UnsupportedProgram(f"loop nest expands to {total} lanes")
            if total == 0:
                return {}, 0
            new_env = {var: np.repeat(values, count) for var, values in env.items()}
            value = np.tile(
                np.arange(int(start.data), int(start.data) + count, dtype=np.int64), n
            )
            new_env[loop.loop_var] = value
            return new_env, total

        starts = _as_lanes(start.data, n).astype(np.int64, copy=False)
        counts = np.maximum(_as_lanes(extent.data, n).astype(np.int64, copy=False), 0)
        total = int(counts.sum())
        if total > MAX_LANES:
            raise UnsupportedProgram(f"loop nest expands to {total} lanes")
        if total == 0:
            return {}, 0
        parent = np.repeat(np.arange(n, dtype=np.int64), counts)
        local = ragged_arange(counts)
        new_env = {var: values[parent] for var, values in env.items()}
        new_env[loop.loop_var] = starts[parent] + local
        return new_env, total

    def _exec_store(
        self, store: BufferStore, env: Dict[Var, np.ndarray], n: int, arrays: Dict[str, np.ndarray]
    ) -> None:
        array = arrays[store.buffer.name]
        index = self._eval(store.indices[0], env, n, arrays)
        residual = self._reduction_residual.get(id(store))
        value = self._eval(residual[1] if residual is not None else store.value, env, n, arrays)

        idx = _as_lanes(index.data, n).astype(np.int64, copy=False)
        vals = _as_lanes(value.data, n)
        dropped = (idx < 0) | (idx >= array.size)
        dropped_any = _merge_invalid(
            dropped if bool(dropped.any()) else None, index.invalid, value.invalid
        )
        if dropped_any is not None:
            keep = ~dropped_any
            if not bool(keep.any()):
                return
            idx = idx[keep]
            vals = vals[keep] if np.ndim(vals) else vals
        if residual is not None:
            ufunc = np.add if residual[0] == "add" else np.multiply
            ufunc.at(array, idx, vals)
        else:
            array[idx] = vals

    # -- expression evaluation -------------------------------------------------
    def _eval(
        self, expr: Expr, env: Dict[Var, np.ndarray], n: int, arrays: Dict[str, np.ndarray]
    ) -> _Lanes:
        if isinstance(expr, IntImm):
            return _Lanes(expr.value)
        if isinstance(expr, FloatImm):
            return _Lanes(expr.value)
        if isinstance(expr, StringImm):
            return _Lanes(expr.value)
        if isinstance(expr, Var):
            if expr not in env:
                raise KeyError(f"unbound variable {expr.name!r} during execution")
            return _Lanes(env[expr])
        if isinstance(expr, BufferLoad):
            return self._eval_load(expr, env, n, arrays)
        if isinstance(expr, BinaryOp):
            a = self._eval(expr.a, env, n, arrays)
            b = self._eval(expr.b, env, n, arrays)
            op = _BINOP_TABLE.get(type(expr))
            if op is None:
                raise UnsupportedProgram(f"unsupported binary op {type(expr).__name__}")
            with np.errstate(divide="ignore", invalid="ignore"):
                data = op(a.data, b.data)
            return _Lanes(data, _merge_invalid(a.invalid, b.invalid))
        if isinstance(expr, Not):
            a = self._eval(expr.a, env, n, arrays)
            return _Lanes(np.logical_not(a.data), a.invalid)
        if isinstance(expr, Select):
            cond = self._eval(expr.condition, env, n, arrays)
            true = self._eval(expr.true_value, env, n, arrays)
            false = self._eval(expr.false_value, env, n, arrays)
            data = np.where(cond.data, true.data, false.data)
            # Only the invalidity of the *chosen* branch counts: the
            # interpreter never evaluates the unchosen branch.
            branch_invalid: Optional[np.ndarray] = None
            if true.invalid is not None or false.invalid is not None:
                true_inv = true.invalid if true.invalid is not None else False
                false_inv = false.invalid if false.invalid is not None else False
                branch_invalid = np.where(
                    np.asarray(cond.data, dtype=bool), true_inv, false_inv
                )
            return _Lanes(data, _merge_invalid(cond.invalid, branch_invalid))
        if isinstance(expr, Cast):
            value = self._eval(expr.value, env, n, arrays)
            data = value.data
            if expr.dtype.startswith("int"):
                data = np.asarray(data).astype(np.int64) if np.ndim(data) else int(data)
            elif expr.dtype.startswith("float"):
                data = np.asarray(data).astype(np.float64) if np.ndim(data) else float(data)
            return _Lanes(data, value.invalid)
        if isinstance(expr, Call):
            return self._eval_call(expr, env, n, arrays)
        raise UnsupportedProgram(f"cannot batch expression of type {type(expr).__name__}")

    def _eval_load(
        self, expr: BufferLoad, env: Dict[Var, np.ndarray], n: int, arrays: Dict[str, np.ndarray]
    ) -> _Lanes:
        if len(expr.indices) != 1:
            raise UnsupportedProgram("stage-III loads must use a single flat index")
        array = arrays[expr.buffer.name]
        index = self._eval(expr.indices[0], env, n, arrays)
        if np.ndim(index.data) == 0:
            idx = int(index.data)
            bad = bool(index.invalid) if index.invalid is not None else False
            if bad or idx < 0 or idx >= array.size:
                return _Lanes(array.dtype.type(0))
            return _Lanes(array[idx])
        idx = index.data.astype(np.int64, copy=False)
        bad = (idx < 0) | (idx >= array.size)
        if index.invalid is not None:
            bad = bad | index.invalid
        if bool(bad.any()):
            safe = np.where(bad, 0, idx)
            values = np.where(bad, array.dtype.type(0), array[safe])
        else:
            values = array[idx]
        # A load *consumes* the structural zero (it evaluates to 0), so the
        # invalid mask does not propagate past it — same as the interpreter
        # catching _StructuralZero at the BufferLoad boundary.
        return _Lanes(values)

    def _eval_call(
        self, call: Call, env: Dict[Var, np.ndarray], n: int, arrays: Dict[str, np.ndarray]
    ) -> _Lanes:
        if call.func == BINARY_SEARCH:
            axis_name = self._eval(call.args[0], env, n, arrays).data
            parent = self._eval(call.args[1], env, n, arrays)
            coord = self._eval(call.args[2], env, n, arrays)
            axis = self.axes_by_name[axis_name]
            parent_arr = _as_lanes(parent.data, n).astype(np.int64, copy=False)
            coord_arr = _as_lanes(coord.data, n).astype(np.int64, copy=False)
            positions = self._coords_to_positions(axis, parent_arr, coord_arr)
            invalid = _merge_invalid(parent.invalid, coord.invalid, positions < 0)
            return _Lanes(positions, invalid)
        if call.func == ROW_UPPER_BOUND:
            axis_name = self._eval(call.args[0], env, n, arrays).data
            position = self._eval(call.args[1], env, n, arrays)
            axis = self.axes_by_name[axis_name]
            indptr = getattr(axis, "indptr", None)
            if indptr is None:
                raise ValueError(f"axis {axis_name!r} has no indptr for row search")
            rows = np.searchsorted(indptr, _as_lanes(position.data, n), side="right") - 1
            return _Lanes(rows.astype(np.int64, copy=False), position.invalid)
        fn = _UNARY_CALLS.get(call.func)
        if fn is not None:
            value = self._eval(call.args[0], env, n, arrays)
            with np.errstate(divide="ignore", invalid="ignore"):
                return _Lanes(fn(value.data), value.invalid)
        raise UnsupportedProgram(f"unknown intrinsic {call.func!r}")

    # -- batched coordinate compression ---------------------------------------
    def _coords_to_positions(
        self, axis: Axis, parent: np.ndarray, coord: np.ndarray
    ) -> np.ndarray:
        return coords_to_positions(axis, parent, coord, self._axis_lookup_cache)


def sorted_axis_keys(
    axis: SparseVariableAxis, cache: Optional[Dict[int, Tuple[np.ndarray, np.ndarray, int]]] = None
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Per-row-disambiguated key array for one searchsorted over all rows."""
    if cache is not None:
        cached = cache.get(id(axis))
        if cached is not None:
            return cached
    indptr = axis.indptr
    indices = axis.indices
    stride = int(axis.length) + 2
    row_of = np.repeat(np.arange(len(indptr) - 1, dtype=np.int64), np.diff(indptr))
    keys = indices + row_of * stride
    entry = (keys, indptr.astype(np.int64, copy=False), stride)
    if cache is not None:
        cache[id(axis)] = entry
    return entry


def coords_to_positions(
    axis: Axis,
    parent: np.ndarray,
    coord: np.ndarray,
    cache: Optional[Dict[int, Tuple[np.ndarray, np.ndarray, int]]] = None,
) -> np.ndarray:
    """Vectorized ``axis.coordinate_to_position``; -1 marks structural zeros.

    Shared by the vectorized executor and by emitted stage-IV kernels (which
    call it once at plan time, through the ``helpers`` namespace).
    """
    if isinstance(axis, DenseFixedAxis):
        return np.where((coord >= 0) & (coord < axis.length), coord, -1)
    if isinstance(axis, DenseVariableAxis):
        extents = axis.indptr[parent + 1] - axis.indptr[parent]
        return np.where((coord >= 0) & (coord < extents), coord, -1)
    if isinstance(axis, SparseVariableAxis):
        keys, starts, stride = sorted_axis_keys(axis, cache)
        targets = coord + parent * stride
        hits = np.searchsorted(keys, targets)
        safe = np.minimum(hits, max(len(keys) - 1, 0))
        found = (hits < len(keys)) & (keys[safe] == targets) if len(keys) else np.zeros_like(targets, dtype=bool)
        return np.where(found, hits - starts[parent], -1)
    if isinstance(axis, SparseFixedAxis):
        table = axis.indices.reshape(-1, axis.nnz_cols)
        if parent.size * axis.nnz_cols > MAX_LANES:
            raise UnsupportedProgram("ELL coordinate search too large to batch")
        rows = table[parent]
        match = rows == coord[:, None]
        found = match.any(axis=1)
        return np.where(found, match.argmax(axis=1), -1)
    raise UnsupportedProgram(f"unsupported axis type {type(axis).__name__}")


def _ambient_loads(stmt: Stmt) -> List[BufferLoad]:
    """Loads evaluated outside store values/indices: loop bounds, conditions,
    let bindings and evaluated expressions of the whole nest."""
    from ..core.expr import post_order
    from ..core.stmt import post_order_stmts

    loads: List[BufferLoad] = []

    def visit(expr: Expr) -> None:
        for sub in post_order(expr):
            if isinstance(sub, BufferLoad):
                loads.append(sub)

    for node in post_order_stmts(stmt):
        if isinstance(node, ForLoop):
            visit(node.start)
            visit(node.extent)
        elif isinstance(node, IfThenElse):
            visit(node.condition)
        elif isinstance(node, LetStmt):
            visit(node.value)
        elif isinstance(node, AssertStmt):
            visit(node.condition)
        elif isinstance(node, Evaluate):
            visit(node.value)
    return loads


def _pass_stores(stmt: Stmt, which: str) -> List[BufferStore]:
    """Stores executed during the init pass or the compute pass of *stmt*."""
    collected: List[BufferStore] = []

    def walk(node: Stmt, in_init: bool) -> None:
        if isinstance(node, BufferStore):
            if (which == "init") == in_init:
                collected.append(node)
            return
        if isinstance(node, Block):
            if node.init is not None:
                walk(node.init, True)
            walk(node.body, in_init)
            return
        if isinstance(node, SeqStmt):
            for child in node.stmts:
                walk(child, in_init)
            return
        if isinstance(node, ForLoop):
            walk(node.body, in_init)
            return
        if isinstance(node, IfThenElse):
            walk(node.then_case, in_init)
            if node.else_case is not None:
                walk(node.else_case, in_init)
            return
        if isinstance(node, (LetStmt, AssertStmt)):
            walk(node.body, in_init)
            return

    walk(stmt, False)
    return collected


def _as_lanes(data: Any, n: int) -> np.ndarray:
    """Broadcast a scalar to an ``(n,)`` lane array; pass arrays through."""
    if np.ndim(data) == 0:
        return np.full(n, data)
    return data


def _mask_env(env: Dict[Var, np.ndarray], mask: np.ndarray) -> Dict[Var, np.ndarray]:
    return {var: values[mask] for var, values in env.items()}
