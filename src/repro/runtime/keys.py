"""Shared content-hashing and dtype-resolution helpers of the runtime.

Both helpers used to live as private functions on :mod:`repro.runtime.session`
(and were at risk of being re-implemented next to the operator front ends);
they are the two policies every operator entry point shares:

* :func:`content_key` — a stable digest of arbitrary parameter/array mixes,
  used to memoise format decompositions and other structure-derived artefacts
  by *content* (two structurally identical matrices share cache entries even
  when they are distinct objects);
* :func:`resolve_dtype` — the value-dtype promotion rule of the operator
  layer (float64 anywhere promotes the whole kernel, everything else computes
  in the paper's float32).
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np


def content_key(*parts: Any) -> str:
    """A stable hex digest of a mixed sequence of arrays and plain values.

    Arrays are hashed by dtype and raw bytes (C-contiguous view), everything
    else by ``repr``.  Parts are length-delimited, so ``("ab",)`` and
    ``("a", "b")`` produce different keys.

    >>> import numpy as np
    >>> content_key("hyb", np.arange(3)) == content_key("hyb", np.arange(3))
    True
    >>> content_key("hyb", np.arange(3)) == content_key("hyb", np.arange(4))
    False
    """
    digest = hashlib.sha1()
    for part in parts:
        if isinstance(part, np.ndarray):
            arr = np.ascontiguousarray(part)
            digest.update(str(arr.dtype).encode())
            digest.update(arr.tobytes())
        else:
            digest.update(repr(part).encode())
        digest.update(b"|")
    return digest.hexdigest()


def resolve_dtype(arrays: Any, dtype: Any) -> str:
    """The value dtype an operator should compute in.

    ``None`` infers from the operands (a single array or a sequence of
    them): if *any* operand is float64 the whole kernel computes in float64,
    everything else computes in the paper's float32 — so no operand is ever
    silently downcast.  The resolved dtype flows into the generated
    program's buffers — and therefore into the structural fingerprint — so a
    float32 cache entry can never serve a float64 caller.

    Operands may be NumPy arrays or any object exposing a ``dtype``
    attribute (e.g. a :class:`~repro.graph.ir.TensorRef` recorded during
    graph capture).

    >>> import numpy as np
    >>> resolve_dtype((np.ones(2, np.float32), np.ones(2, np.float64)), None)
    'float64'
    >>> resolve_dtype(np.ones(2, np.float32), None)
    'float32'
    """
    if dtype is None:
        operands = arrays if isinstance(arrays, (tuple, list)) else (arrays,)
        for operand in operands:
            found = getattr(operand, "dtype", None)
            if found is None:
                found = np.asarray(operand).dtype
            if np.dtype(found) == np.float64:
                return "float64"
        return "float32"
    name = np.dtype(dtype).name
    if name not in ("float32", "float64"):
        raise ValueError(f"unsupported value dtype {name!r}; use float32 or float64")
    return name
