"""Session: the compile-once/run-many entry point of the runtime.

A :class:`Session` bundles everything between "here is a sparse matrix" and
"here is the result array":

* **format decomposition caching** — composable-format decompositions
  (``hyb(c, k)`` today) are memoised by sparsity-structure content, so the
  tuner and repeated operator calls never re-bucket the same matrix;
* **kernel building with structural caching** — every ``build()`` goes
  through the session's :class:`~repro.core.codegen.cache.KernelCache`, so
  identical programs are lowered once;
* **persistent warm starts** — the kernel cache can carry an on-disk layer
  (``persistent=True`` or ``$REPRO_KERNEL_CACHE``), so a fresh process
  reloads lowered programs and emitted stage-IV source instead of
  recompiling them;
* **execution engine selection** — kernels run on the emitted stage-IV
  kernel when available, then the vectorized fast path, then the
  interpreter, and the session records which tier served each run.

Operator-level helpers (:meth:`Session.spmm`, :meth:`Session.sddmm`,
:meth:`Session.pruned_spmm`, :meth:`Session.batched_spmm`,
:meth:`Session.batched_sddmm`, :meth:`Session.rgms`,
:meth:`Session.sparse_conv`) wrap the stage-I program builders in
:mod:`repro.ops` and return plain NumPy arrays — every workload family of the
paper executes end-to-end through this one runtime.

Example:

    >>> import numpy as np
    >>> from repro.formats.csr import CSRMatrix
    >>> from repro.runtime.session import Session
    >>> session = Session()
    >>> csr = CSRMatrix.from_dense(np.eye(4, dtype=np.float32))
    >>> session.spmm(csr, np.ones((4, 2), dtype=np.float32)).shape
    (4, 2)
    >>> session.stats.fast_runs
    1
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

import numpy as np

from ..core.codegen.build import Kernel, build
from ..core.codegen.cache import KernelCache
from ..core.program import PrimFunc
from .keys import content_key, resolve_dtype


@dataclass
class SessionStats:
    """Counters describing the compile/run activity of one session.

    ``native_runs`` / ``emitted_runs`` / ``vectorized_runs`` /
    ``interpreted_runs`` count which dispatch tier served each kernel
    execution.  Compilation-side counters (``lowerings``, ``emissions``,
    ``native_hits``, ``native_rebuilds``, ``disk_hits``) live on the kernel
    cache — read them from ``session.cache.stats`` to assert that a
    warm-started process did no compilation work at all.
    """

    builds: int = 0
    kernel_cache_hits: int = 0
    kernel_cache_misses: int = 0
    format_cache_hits: int = 0
    format_cache_misses: int = 0
    native_runs: int = 0
    emitted_runs: int = 0
    vectorized_runs: int = 0
    interpreted_runs: int = 0
    graph_nodes_fused: int = 0
    graph_nodes_unfused: int = 0
    overlay_runs: int = 0
    stale_plan_reuses: int = 0
    retunes_triggered: int = 0

    @property
    def runs(self) -> int:
        return (
            self.native_runs
            + self.emitted_runs
            + self.vectorized_runs
            + self.interpreted_runs
        )

    @property
    def fast_runs(self) -> int:
        """Runs served without the scalar interpreter (native, emitted or
        vectorized)."""
        return self.native_runs + self.emitted_runs + self.vectorized_runs

    def as_dict(self) -> Dict[str, int]:
        return {
            "builds": self.builds,
            "kernel_cache_hits": self.kernel_cache_hits,
            "kernel_cache_misses": self.kernel_cache_misses,
            "format_cache_hits": self.format_cache_hits,
            "format_cache_misses": self.format_cache_misses,
            "native_runs": self.native_runs,
            "emitted_runs": self.emitted_runs,
            "vectorized_runs": self.vectorized_runs,
            "interpreted_runs": self.interpreted_runs,
            "graph_nodes_fused": self.graph_nodes_fused,
            "graph_nodes_unfused": self.graph_nodes_unfused,
            "overlay_runs": self.overlay_runs,
            "stale_plan_reuses": self.stale_plan_reuses,
            "retunes_triggered": self.retunes_triggered,
        }


#: Sentinel: the session's tuning-record store is resolved lazily on first use.
_UNRESOLVED = object()


def _pad_axis(array: np.ndarray, axis: int, length: int) -> np.ndarray:
    """Zero-pad one axis of *array* up to *length* (no-op when equal)."""
    if array.shape[axis] == length:
        return array
    pad = [(0, 0)] * array.ndim
    pad[axis] = (0, length - array.shape[axis])
    return np.pad(array, pad)


# Backwards-compatible aliases: the canonical definitions moved to
# :mod:`repro.runtime.keys` so the operator registry and the graph layer can
# share them without importing the (heavier) session module.
_content_key = content_key
_resolve_dtype = resolve_dtype


class Session:
    """Compile-once/run-many facade over decomposition, build and execution.

    Parameters
    ----------
    cache:
        The kernel cache to build through.  ``None`` creates a private cache;
        pass :func:`~repro.core.codegen.cache.global_kernel_cache` to share
        lowering work with plain ``build()`` calls, or ``False`` to disable
        kernel caching.
    engine:
        Execution backend passed to :meth:`Kernel.run`: ``"auto"`` (default:
        emitted, then vectorized, then interpreter), ``"emitted"``,
        ``"vectorized"`` or ``"interpret"``.
    persistent:
        On-disk layer of the session's private kernel cache: ``None``
        (default) follows ``$REPRO_KERNEL_CACHE``; ``True`` uses the default
        location (``~/.cache/repro-kernels``); ``False`` disables it; a path
        selects an explicit cache directory.  Ignored when ``cache`` is
        given — a shared cache keeps its own disk configuration.
    format_cache_capacity:
        LRU bound on memoised format decompositions (each entry holds a full
        decomposition of one matrix, so this bounds session memory).
    tuning_records:
        Persistent layer of the session's tuning records: ``None`` (default)
        follows ``$REPRO_TUNING_RECORDS``; ``True`` uses the default
        location (``~/.cache/repro-tuning``); ``False`` keeps records
        in-memory only; a path or
        :class:`~repro.tune.records.TuningRecordStore` selects an explicit
        store.  :meth:`autotune` writes records through it and the
        ``tuned=True`` operator flag reads them back.
    drift_threshold:
        Structural-drift bound for autotuned plans on mutated matrices:
        once a structure has drifted (cumulative edge edits since its last
        :meth:`autotune`, over the nnz at tune time) past this fraction,
        ``tuned=True`` calls stop reusing the stale plan and a re-tune is
        triggered — queued on :attr:`retune_pending` by default, run inline
        when ``auto_retune`` is set.  Below the threshold the recorded plan
        is reused (counted in ``stats.stale_plan_reuses``).
    auto_retune:
        Run the drift-triggered :meth:`autotune` inline inside the operator
        call instead of queueing it (defaults to ``False`` — a tuning
        search inside a serving request is a latency cliff; call
        :meth:`retune` to drain the queue at a convenient time).
    """

    def __init__(
        self,
        cache: Optional[KernelCache] = None,
        engine: str = "auto",
        persistent: Any = None,
        format_cache_capacity: int = 64,
        tuning_records: Any = None,
        drift_threshold: float = 0.5,
        auto_retune: bool = False,
    ):
        if format_cache_capacity <= 0:
            raise ValueError("format_cache_capacity must be positive")
        if cache is None:
            if persistent is None:
                cache = KernelCache()  # disk layer resolved from the environment
            elif persistent is True:
                from ..core.codegen.cache import DiskKernelCache

                cache = KernelCache(disk=DiskKernelCache())
            elif persistent is False:
                cache = KernelCache(disk=None)
            else:
                cache = KernelCache(disk=persistent)
        self.cache: Any = cache
        self.engine = engine
        self.stats = SessionStats()
        self.format_cache_capacity = int(format_cache_capacity)
        self._formats: "OrderedDict[str, Any]" = OrderedDict()
        self._format_lock = threading.Lock()
        self._tuning_records_arg = tuning_records
        self._tuning_store: Any = _UNRESOLVED
        self._tuned: Dict[str, Any] = {}
        self._fingerprints: "OrderedDict[tuple, Any]" = OrderedDict()
        self.drift_threshold = float(drift_threshold)
        self.auto_retune = bool(auto_retune)
        #: ``id(structure) -> lineage`` of the last autotune per mutable
        #: structure (strong refs, so ids cannot be reused while tracked).
        self._tuned_lineage: Dict[int, Dict[str, Any]] = {}
        #: Drift-triggered re-tunes awaiting :meth:`retune` (when
        #: ``auto_retune`` is off).
        self.retune_pending: list = []

    # -- compilation -----------------------------------------------------------
    def build(self, func: PrimFunc, horizontal_fusion: bool = True) -> Kernel:
        """Build *func* through the session's structural kernel cache."""
        cache = self.cache
        before = cache.stats.hits if isinstance(cache, KernelCache) else 0
        kernel = build(func, horizontal_fusion=horizontal_fusion, cache=cache)
        self.stats.builds += 1
        if isinstance(cache, KernelCache):
            if cache.stats.hits > before:
                self.stats.kernel_cache_hits += 1
            else:
                self.stats.kernel_cache_misses += 1
        return kernel

    def run(
        self,
        func: PrimFunc,
        bindings: Optional[Mapping[str, np.ndarray]] = None,
        horizontal_fusion: bool = True,
    ) -> Dict[str, np.ndarray]:
        """Build (cached) and execute *func*, returning all buffer arrays."""
        kernel = self.build(func, horizontal_fusion=horizontal_fusion)
        return self.run_kernel(kernel, bindings)

    def run_kernel(
        self, kernel: Kernel, bindings: Optional[Mapping[str, np.ndarray]] = None
    ) -> Dict[str, np.ndarray]:
        """Execute an already-built kernel with the session's engine."""
        result = kernel.run(bindings, engine=self.engine)
        if kernel.last_engine == "native":
            self.stats.native_runs += 1
        elif kernel.last_engine == "emitted":
            self.stats.emitted_runs += 1
        elif kernel.last_engine == "vectorized":
            self.stats.vectorized_runs += 1
        else:
            self.stats.interpreted_runs += 1
        return result

    def _execute(self, spec) -> np.ndarray:
        """Build, run and finalise one resolved operator spec.

        The single execution path behind every public operator method: the
        spec (see :mod:`repro.ops.registry`) already carries the resolved
        dtype, tuned overrides and format decompositions, so all that is
        left is the shared build/run/finalize plumbing.
        """
        from ..ops import registry

        func, names = registry.build_spec_program(spec)
        out = self.run(func)
        return registry.finalize(spec, out[names["out"]])

    # -- graph capture -----------------------------------------------------------
    def graph(self):
        """Open a lazy capture scope: a :class:`~repro.graph.builder.GraphBuilder`.

        The builder mirrors the operator methods (plus dense ``gemm`` /
        ``add`` / ``relu`` and the attention ``edge_softmax`` /
        ``batched_spmm_edges``) but records nodes instead of executing;
        ``builder.compile()`` lowers the captured
        :class:`~repro.graph.ir.DataflowGraph` into an executable
        :class:`~repro.graph.compile.CompiledGraph` with cross-op fusion.
        """
        from ..graph import GraphBuilder

        return GraphBuilder(self)

    # -- autotuning ------------------------------------------------------------
    @property
    def tuning_records(self):
        """The resolved persistent record store (may be ``None``)."""
        from ..tune.records import resolve_record_store

        if self._tuning_store is _UNRESOLVED:
            self._tuning_store = resolve_record_store(self._tuning_records_arg)
        return self._tuning_store

    def autotune(self, workload: str, problem: Any, **kwargs) -> Any:
        """Search the workload's decomposition space through this session.

        Delegates to :func:`repro.tune.autoscheduler.autotune` with this
        session as the measurement runtime and its record store as the
        persistence layer; the winning
        :class:`~repro.tune.records.TuningRecord` is remembered in-session,
        so subsequent operator calls with ``tuned=True`` pick the tuned
        decomposition up automatically.

        The session's record store also accumulates the phase-2 measurement
        corpus, so ``cost_model="hybrid"`` (rank phase 1 with the
        corpus-trained residual model once it is confident, spending fewer
        wallclock measurements) and ``transfer=True`` (seed a new workload
        from its nearest already-tuned neighbour in feature space, skipping
        phase 2 entirely under high confidence) work per session out of the
        box — see :mod:`repro.tune.transfer` and ``docs/tuning.md``.

        Args:
            workload: Registered workload family (``"spmm"``, ``"sddmm"``,
                ``"attention"``, ``"rgms"``, ``"sparse_conv"``,
                ``"pruned_spmm"``).
            problem: The family's problem description (e.g.
                :class:`~repro.tune.spaces.SpMMProblem`).
            **kwargs: Forwarded to the driver (strategy, max_trials,
                survivors, repeats, seed, device, force, cost_model,
                transfer, ...).

        Returns:
            The :class:`~repro.tune.tuner.TuningResult`.
        """
        from ..tune.autoscheduler import autotune

        store = self.tuning_records
        kwargs.setdefault("records", store if store is not None else False)
        result = autotune(workload, problem, session=self, **kwargs)
        if result.record is not None:
            self._remember_tuning(result.record)
            structure = self._problem_structure(problem)
            if structure is not None and hasattr(structure, "structure_epoch"):
                self._tuned_lineage[id(structure)] = {
                    "structure": structure,
                    "workload": workload,
                    "record": result.record,
                    "mutations": int(getattr(structure, "mutation_count", 0)),
                    "nnz": int(structure.nnz),
                    "kwargs": dict(kwargs),
                }
        return result

    def retune(self, **kwargs) -> list:
        """Drain :attr:`retune_pending`: re-run :meth:`autotune` per task.

        Each drift-triggered task re-tunes with the keyword arguments of its
        original :meth:`autotune` call (strategy, trial budget, seed, ...),
        overridden by any *kwargs* given here.  Returns the list of
        :class:`~repro.tune.tuner.TuningResult` objects.
        """
        pending, self.retune_pending = self.retune_pending, []
        results = []
        for entry in pending:
            merged = {**entry["kwargs"], **kwargs}
            results.append(self.autotune(entry["workload"], entry["problem"], **merged))
        return results

    def _remember_tuning(self, record: Any) -> None:
        self._tuned[record.fingerprint] = record

    @staticmethod
    def _problem_structure(problem: Any):
        """The problem's (first) epoch-carrying structure field, if any."""
        import dataclasses

        if not dataclasses.is_dataclass(problem):
            return problem if hasattr(problem, "structure_epoch") else None
        for field_ in dataclasses.fields(problem):
            value = getattr(problem, field_.name)
            if hasattr(value, "structure_epoch"):
                return value
        return None

    def _lineage_record(self, workload: str, problem: Any):
        """Stale-but-close plan reuse / re-tune trigger for drifted structures.

        Called on an exact-fingerprint miss.  If the problem's structure was
        autotuned earlier in this session and has since mutated, the
        recorded plan is reused while the drift (edits since tune / nnz at
        tune) stays below :attr:`drift_threshold`; crossing it triggers a
        re-tune — inline when :attr:`auto_retune` is set, else queued on
        :attr:`retune_pending` — and the lineage entry is retired so the
        trigger fires once per crossing.
        """
        structure = self._problem_structure(problem)
        if structure is None:
            return None
        entry = self._tuned_lineage.get(id(structure))
        if entry is None or entry["structure"] is not structure or entry["workload"] != workload:
            return None
        edits = int(getattr(structure, "mutation_count", 0)) - entry["mutations"]
        drift = edits / max(entry["nnz"], 1)
        if drift < self.drift_threshold:
            self.stats.stale_plan_reuses += 1
            return entry["record"]
        self.stats.retunes_triggered += 1
        del self._tuned_lineage[id(structure)]
        if self.auto_retune:
            result = self.autotune(workload, problem, **entry["kwargs"])
            return result.record
        self.retune_pending.append(
            {"workload": workload, "problem": problem, "kwargs": entry["kwargs"]}
        )
        return None

    def _task_fingerprint(self, workload: str, problem: Any) -> str:
        """Structural task fingerprint, memoised by problem identity + epoch.

        The full fingerprint hashes the problem's structural arrays (O(nnz));
        run-many loops call ``tuned=True`` operators with the *same* problem
        objects, so the hash is computed once per (workload, structure) and
        served from a bounded memo afterwards.  Memo entries hold strong
        references to the keyed objects, so an ``id()`` can never be reused
        while its key is alive; mutable structures are keyed by
        ``(id, structure_epoch)``, so a mutated matrix can never hit its
        pre-mutation entry.
        """
        import dataclasses

        parts: list = [workload]
        refs: list = []
        for field_ in dataclasses.fields(problem) if dataclasses.is_dataclass(problem) else []:
            value = getattr(problem, field_.name)
            if isinstance(value, (int, float, str, bool, type(None))):
                parts.append(value)
            else:
                parts.append((id(value), getattr(value, "structure_epoch", None)))
                refs.append(value)
        if not refs and not dataclasses.is_dataclass(problem):
            parts.append((id(problem), getattr(problem, "structure_epoch", None)))
            refs.append(problem)
        key = tuple(parts)
        hit = self._fingerprints.get(key)
        if hit is not None:
            self._fingerprints.move_to_end(key)
            return hit[0]
        from ..tune.spaces import get_workload, task_fingerprint

        fingerprint = task_fingerprint(get_workload(workload), problem)
        self._fingerprints[key] = (fingerprint, refs)
        while len(self._fingerprints) > self.format_cache_capacity:
            self._fingerprints.popitem(last=False)
        return fingerprint

    def tuning_record(self, workload: str, problem: Any):
        """The remembered (or persisted) record for one task, or ``None``.

        Disk misses are cached too: a run-many loop with no record pays the
        store lookup once, not per call.
        """
        fingerprint = self._task_fingerprint(workload, problem)
        record = self._tuned.get(fingerprint, _UNRESOLVED)
        if record is not _UNRESOLVED:
            return record
        store = self.tuning_records
        record = store.get(fingerprint) if store is not None else None
        if record is None:
            record = self._lineage_record(workload, problem)
        self._tuned[fingerprint] = record
        return record

    def _tuned_overrides(self, workload: str, problem: Any) -> Dict[str, Any]:
        """Execution-relevant parameters of the task's tuning record.

        Returns an empty dict when no record exists — callers fall back to
        their default (untuned) parameters.
        """
        record = self.tuning_record(workload, problem)
        if record is None:
            return {}
        from ..tune.spaces import get_workload

        return get_workload(workload).exec_config(record.config)

    # -- format decomposition --------------------------------------------------
    def _memoized_format(self, key: str, build_entry):
        """LRU-memoise one derived-format entry, tracking hit/miss stats.

        The lock covers only the LRU bookkeeping (serving runs sessions from
        several threads); ``build_entry`` itself runs outside it, so two
        threads may race to build the same decomposition — both results are
        equivalent and the second store wins harmlessly.
        """
        with self._format_lock:
            hit = self._formats.get(key)
            if hit is not None:
                self._formats.move_to_end(key)
                self.stats.format_cache_hits += 1
                return hit
            self.stats.format_cache_misses += 1
        entry = build_entry()
        with self._format_lock:
            self._formats[key] = entry
            while len(self._formats) > self.format_cache_capacity:
                self._formats.popitem(last=False)
        return entry

    @staticmethod
    def _csr_memo_content(csr) -> Any:
        """Content identity of a matrix for decomposition memo keys.

        Epoch-memoised :meth:`~repro.formats.csr.CSRMatrix.content_signature`
        when available (stale-proof under mutation, O(1) when unchanged);
        plain content hash of the triplet otherwise.
        """
        signature = getattr(csr, "content_signature", None)
        if callable(signature):
            return signature()
        return _content_key(csr.shape, csr.indptr, csr.indices, csr.data)

    def decompose_hyb(self, csr, num_col_parts: int = 1, num_buckets: Optional[int] = None):
        """``HybFormat.from_csr`` memoised by sparsity content and parameters."""
        from ..formats.hyb import HybFormat

        key = _content_key("hyb", self._csr_memo_content(csr), num_col_parts, num_buckets)
        return self._memoized_format(
            key,
            lambda: HybFormat.from_csr(csr, num_col_parts=num_col_parts, num_buckets=num_buckets),
        )

    def decompose_bsr(self, csr, block_size: int):
        """``BSRMatrix.from_csr`` memoised by sparsity content and block size.

        Args:
            csr: The source :class:`~repro.formats.csr.CSRMatrix`.
            block_size: Square block edge length.

        Returns:
            The cached :class:`~repro.formats.bsr.BSRMatrix` view.
        """
        from ..formats.bsr import BSRMatrix

        key = _content_key("bsr", self._csr_memo_content(csr), block_size)
        return self._memoized_format(key, lambda: BSRMatrix.from_csr(csr, block_size))

    # -- operators -------------------------------------------------------------
    def spmm(
        self,
        csr,
        features: np.ndarray,
        format: str = "csr",
        num_col_parts: int = 1,
        num_buckets: Optional[int] = None,
        dtype: Any = None,
        tuned: bool = False,
    ) -> np.ndarray:
        """``A @ X`` through the full compile/execute pipeline.

        A matrix with a pending delta
        (:attr:`~repro.formats.csr.CSRMatrix.has_pending_delta`) executes
        as base plan + overlay — the frozen base runs through its warm
        cached kernel and only the delta's affected rows are recomputed —
        bit-exact with a cold rebuild (see :mod:`repro.runtime.dynamic`).

        Args:
            csr: The sparse matrix (:class:`~repro.formats.csr.CSRMatrix`).
            features: Dense operand of shape ``(cols, feat)``.
            format: ``"csr"`` runs the Figure-3 CSR program; ``"hyb"``
                decomposes into the composable ``hyb`` format first (cached)
                and runs the per-bucket ELL programs.
            num_col_parts: Column partitions of the ``hyb`` decomposition.
            num_buckets: Bucket count of the ``hyb`` decomposition.
            dtype: Value dtype to compute in (``float32``/``float64``).
                ``None`` infers from the operands (float64 anywhere means a
                float64 kernel); the dtype is part of the program structure,
                so float32 and float64 callers never share a cached kernel.
            tuned: Apply the autotuned decomposition recorded for this
                structure (see :meth:`autotune`), overriding ``format`` /
                ``num_col_parts`` / ``num_buckets``.  Without a record the
                explicit parameters are used unchanged.

        Returns:
            The dense product, shape ``(rows, feat)`` in the resolved dtype.
        """
        if getattr(csr, "has_pending_delta", False):
            from .dynamic import overlay_spmm

            return overlay_spmm(
                self, csr, features, format=format, num_col_parts=num_col_parts,
                num_buckets=num_buckets, dtype=dtype, tuned=tuned,
            )
        from ..ops.registry import prepare_spmm

        return self._execute(prepare_spmm(
            self, csr, features, format=format, num_col_parts=num_col_parts,
            num_buckets=num_buckets, dtype=dtype, tuned=tuned,
        ))

    def sddmm(
        self,
        csr,
        x: np.ndarray,
        y: np.ndarray,
        fuse_ij: bool = True,
        dtype: Any = None,
        tuned: bool = False,
    ) -> np.ndarray:
        """Sampled dense-dense matmul at the non-zeros of ``csr``.

        A matrix with a pending delta executes as base plan + edge overlay,
        bit-exact with a cold rebuild (see :mod:`repro.runtime.dynamic`).

        Args:
            csr: The sampling structure (values scale each edge score).
            x: Dense operand of shape ``(rows, feat)``.
            y: Dense operand of shape ``(feat, cols)``.
            fuse_ij: Iterate the (row, edge) axes as one fused loop.
            dtype: Value dtype to compute in; ``None`` infers from the operands.
            tuned: Apply the autotuned loop structure recorded for this
                structure (overrides ``fuse_ij`` when a record exists).

        Returns:
            The new edge values in CSR order, shape ``(nnz,)``.
        """
        if getattr(csr, "has_pending_delta", False):
            from .dynamic import overlay_sddmm

            return overlay_sddmm(
                self, csr, x, y, fuse_ij=fuse_ij, dtype=dtype, tuned=tuned
            )
        from ..ops.registry import prepare_sddmm

        return self._execute(prepare_sddmm(
            self, csr, x, y, fuse_ij=fuse_ij, dtype=dtype, tuned=tuned
        ))

    def pruned_spmm(self, bsr, x: np.ndarray) -> np.ndarray:
        """``W @ X`` with a BSR (block-pruned) weight matrix.

        Args:
            bsr: The pruned weights (:class:`~repro.formats.bsr.BSRMatrix`).
            x: Dense activation of shape ``(in_features, seq_len)``.

        Returns:
            The product, shape ``(out_features, seq_len)``.
        """
        from ..ops.registry import prepare_pruned_spmm

        return self._execute(prepare_pruned_spmm(self, bsr, x))

    def batched_spmm(
        self,
        csr,
        features: np.ndarray,
        format: str = "csr",
        block_size: int = 16,
        dtype: Any = None,
        tuned: bool = False,
    ) -> np.ndarray:
        """Multi-head SpMM ``O[h] = A @ X[h]`` with a shared sparse mask.

        The head axis is a dense batch loop of the generated program, so the
        vectorized executor flattens it into lanes alongside rows and
        features.

        Args:
            csr: The shared mask (:class:`~repro.formats.csr.CSRMatrix`).
            features: Per-head operands, shape ``(heads, cols, feat)``.
            format: ``"csr"`` for the scalar program, ``"bsr"`` for the
                block program over the cached BSR decomposition.
            block_size: BSR block size (``format="bsr"`` only).
            dtype: Value dtype (``float32``/``float64``).  ``None`` keeps
                the historical float32 default; an explicit ``float64``
                (CSR format only) makes the whole kernel — and its cache
                fingerprint — double precision, which is what lets the
                serving batcher coalesce float64 requests bit-exactly.
            tuned: Apply the ``attention`` tuning record for this mask and
                shape (overrides ``format`` / ``block_size``).

        Returns:
            The per-head products, shape ``(heads, rows, feat)``.
        """
        from ..ops.registry import prepare_batched_spmm

        return self._execute(prepare_batched_spmm(
            self, csr, features, format=format, block_size=block_size,
            dtype=dtype, tuned=tuned,
        ))

    def batched_sddmm(
        self,
        csr,
        q: np.ndarray,
        k: np.ndarray,
        format: str = "csr",
        block_size: int = 16,
        fuse_ij: bool = True,
        scale: Optional[float] = None,
        dtype: Any = None,
        tuned: bool = False,
    ) -> np.ndarray:
        """Multi-head SDDMM ``S[h] = (Q[h] @ K[h]) * mask`` at the mask's nnz.

        Args:
            csr: The shared mask.
            q: Per-head queries, shape ``(heads, rows, feat)``.
            k: Per-head keys, shape ``(heads, feat, cols)``.
            format: ``"csr"`` (fused edge loop) or ``"bsr"`` (per-block
                matmuls over the cached BSR decomposition; requires a
                block-aligned mask).
            block_size: BSR block size (``format="bsr"`` only).
            fuse_ij: Iterate the (row, edge) axes as one fused loop
                (``format="csr"`` only).
            scale: Optional score scaling (e.g. ``1/sqrt(d)``) applied by a
                pointwise rescaling iteration inside the same kernel.
            dtype: Value dtype (``float32``/``float64``).  ``None`` keeps
                the historical float32 default; explicit ``float64`` is
                CSR-format only (see :meth:`batched_spmm`).
            tuned: Apply the ``attention`` tuning record for this mask and
                shape (overrides ``format`` / ``block_size``).

        Returns:
            Per-head edge scores in CSR order, shape ``(heads, nnz)``.
        """
        from ..ops.registry import prepare_batched_sddmm

        return self._execute(prepare_batched_sddmm(
            self, csr, q, k, format=format, block_size=block_size,
            fuse_ij=fuse_ij, scale=scale, dtype=dtype, tuned=tuned,
        ))

    def rgms(self, adjacency, x: np.ndarray, w: np.ndarray, tuned: bool = False) -> np.ndarray:
        """Relational gather-matmul-scatter over a CSF adjacency tensor.

        One program per adjacency structure: the relation dimension unrolls
        into per-relation sparse iterations that share the output buffer, so
        repeated calls (RGCN layers, forward passes) reuse one cached build.

        Args:
            adjacency: :class:`~repro.formats.csf.CSFTensor` of shape
                ``(R, n, n)``.
            x: Node features, shape ``(n, d_in)``.
            w: Per-relation weights, shape ``(R, d_in, d_out)``.
            tuned: Accepted for API uniformity with the other workloads.
                The RGMS tuning record picks between launch *strategies* in
                the cost model; the runtime has a single fused program, so
                no execution parameter changes.

        Returns:
            Aggregated features, shape ``(n, d_out)``.
        """
        from ..ops.registry import prepare_rgms

        return self._execute(prepare_rgms(self, adjacency, x, w, tuned=tuned))

    def sparse_conv(
        self, problem, features: np.ndarray, weights: np.ndarray, tuned: bool = False
    ) -> np.ndarray:
        """Fused gather-GEMM-scatter sparse convolution over kernel maps.

        Args:
            problem: :class:`~repro.ops.sparse_conv.SparseConvProblem`
                describing the layer's ELL(1) kernel-map relations.
            features: Input voxel features, ``(num_in_points, in_channels)``.
            weights: Kernel weights,
                ``(kernel_volume, in_channels, out_channels)``.
            tuned: Accepted for API uniformity with the other workloads; the
                sparse-conv record picks between launch strategies in the
                cost model, the runtime has a single fused program.

        Returns:
            Output voxel features, ``(num_out_points, out_channels)``.
        """
        from ..ops.registry import prepare_sparse_conv

        return self._execute(prepare_sparse_conv(self, problem, features, weights, tuned=tuned))

    def edge_softmax(self, csr, scores: np.ndarray, dtype: Any = None) -> np.ndarray:
        """Row-wise softmax over the stored edges, per head.

        Args:
            csr: The sparsity structure whose edges carry the scores.
            scores: Per-head edge scores in CSR order, shape ``(heads, nnz)``.
            dtype: Value dtype to compute in; ``None`` infers from ``scores``.

        Returns:
            The attention probabilities in CSR order, shape ``(heads, nnz)``.
        """
        from ..ops.registry import prepare_edge_softmax

        return self._execute(prepare_edge_softmax(self, csr, scores, dtype=dtype))

    def batched_spmm_edges(
        self, csr, edge_values: np.ndarray, features: np.ndarray, dtype: Any = None
    ) -> np.ndarray:
        """Multi-head SpMM with per-head edge values (the attention consumer).

        Args:
            csr: The shared mask structure.
            edge_values: Per-head edge values in CSR order, ``(heads, nnz)``.
            features: Per-head dense operands, ``(heads, cols, feat)``.
            dtype: Value dtype to compute in; ``None`` infers from operands.

        Returns:
            The per-head products, shape ``(heads, rows, feat)``.
        """
        from ..ops.registry import prepare_batched_spmm_edges

        return self._execute(prepare_batched_spmm_edges(
            self, csr, edge_values, features, dtype=dtype
        ))

    def gemm(self, a: np.ndarray, b: np.ndarray, dtype: Any = None) -> np.ndarray:
        """Dense ``A @ B`` through the generated-kernel pipeline."""
        from ..ops.registry import prepare_gemm

        return self._execute(prepare_gemm(self, a, b, dtype=dtype))

    def add(self, a: np.ndarray, b: np.ndarray, dtype: Any = None) -> np.ndarray:
        """Element-wise ``A + B`` through the generated-kernel pipeline."""
        from ..ops.registry import prepare_add

        return self._execute(prepare_add(self, a, b, dtype=dtype))

    def relu(self, a: np.ndarray, dtype: Any = None) -> np.ndarray:
        """Element-wise ``max(A, 0)`` through the generated-kernel pipeline."""
        from ..ops.registry import prepare_relu

        return self._execute(prepare_relu(self, a, dtype=dtype))

    def __repr__(self) -> str:
        return f"Session(engine={self.engine!r}, stats={self.stats.as_dict()})"


_DEFAULT_SESSION: Optional[Session] = None


def get_default_session() -> Session:
    """The process-wide session used by module-level operator helpers."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        from ..core.codegen.cache import global_kernel_cache

        _DEFAULT_SESSION = Session(cache=global_kernel_cache())
    return _DEFAULT_SESSION
