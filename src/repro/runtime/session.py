"""Session: the compile-once/run-many entry point of the runtime.

A :class:`Session` bundles everything between "here is a sparse matrix" and
"here is the result array":

* **format decomposition caching** — composable-format decompositions
  (``hyb(c, k)`` today) are memoised by sparsity-structure content, so the
  tuner and repeated operator calls never re-bucket the same matrix;
* **kernel building with structural caching** — every ``build()`` goes
  through the session's :class:`~repro.core.codegen.cache.KernelCache`, so
  identical programs are lowered once;
* **execution engine selection** — kernels run on the vectorized fast path
  with automatic interpreter fallback, and the session records which engine
  served each run.

Operator-level helpers (:meth:`Session.spmm`, :meth:`Session.sddmm`,
:meth:`Session.pruned_spmm`, :meth:`Session.batched_spmm`,
:meth:`Session.batched_sddmm`, :meth:`Session.rgms`,
:meth:`Session.sparse_conv`) wrap the stage-I program builders in
:mod:`repro.ops` and return plain NumPy arrays — every workload family of the
paper executes end-to-end through this one runtime.

Example:

    >>> import numpy as np
    >>> from repro.formats.csr import CSRMatrix
    >>> from repro.runtime.session import Session
    >>> session = Session()
    >>> csr = CSRMatrix.from_dense(np.eye(4, dtype=np.float32))
    >>> session.spmm(csr, np.ones((4, 2), dtype=np.float32)).shape
    (4, 2)
    >>> session.stats.vectorized_runs
    1
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

import numpy as np

from ..core.codegen.build import Kernel, build
from ..core.codegen.cache import KernelCache
from ..core.program import PrimFunc


@dataclass
class SessionStats:
    """Counters describing the compile/run activity of one session."""

    builds: int = 0
    kernel_cache_hits: int = 0
    kernel_cache_misses: int = 0
    format_cache_hits: int = 0
    format_cache_misses: int = 0
    vectorized_runs: int = 0
    interpreted_runs: int = 0

    @property
    def runs(self) -> int:
        return self.vectorized_runs + self.interpreted_runs

    def as_dict(self) -> Dict[str, int]:
        return {
            "builds": self.builds,
            "kernel_cache_hits": self.kernel_cache_hits,
            "kernel_cache_misses": self.kernel_cache_misses,
            "format_cache_hits": self.format_cache_hits,
            "format_cache_misses": self.format_cache_misses,
            "vectorized_runs": self.vectorized_runs,
            "interpreted_runs": self.interpreted_runs,
        }


def _pad_axis(array: np.ndarray, axis: int, length: int) -> np.ndarray:
    """Zero-pad one axis of *array* up to *length* (no-op when equal)."""
    if array.shape[axis] == length:
        return array
    pad = [(0, 0)] * array.ndim
    pad[axis] = (0, length - array.shape[axis])
    return np.pad(array, pad)


def _content_key(*parts: Any) -> str:
    digest = hashlib.sha1()
    for part in parts:
        if isinstance(part, np.ndarray):
            digest.update(np.ascontiguousarray(part).tobytes())
        else:
            digest.update(repr(part).encode())
        digest.update(b"|")
    return digest.hexdigest()


class Session:
    """Compile-once/run-many facade over decomposition, build and execution.

    Parameters
    ----------
    cache:
        The kernel cache to build through.  ``None`` creates a private cache;
        pass :func:`~repro.core.codegen.cache.global_kernel_cache` to share
        lowering work with plain ``build()`` calls, or ``False`` to disable
        kernel caching.
    engine:
        Execution backend passed to :meth:`Kernel.run`: ``"auto"`` (default),
        ``"vectorized"`` or ``"interpret"``.
    format_cache_capacity:
        LRU bound on memoised format decompositions (each entry holds a full
        decomposition of one matrix, so this bounds session memory).
    """

    def __init__(
        self,
        cache: Optional[KernelCache] = None,
        engine: str = "auto",
        format_cache_capacity: int = 64,
    ):
        if format_cache_capacity <= 0:
            raise ValueError("format_cache_capacity must be positive")
        self.cache: Any = KernelCache() if cache is None else cache
        self.engine = engine
        self.stats = SessionStats()
        self.format_cache_capacity = int(format_cache_capacity)
        self._formats: "OrderedDict[str, Any]" = OrderedDict()

    # -- compilation -----------------------------------------------------------
    def build(self, func: PrimFunc, horizontal_fusion: bool = True) -> Kernel:
        """Build *func* through the session's structural kernel cache."""
        cache = self.cache
        before = cache.stats.hits if isinstance(cache, KernelCache) else 0
        kernel = build(func, horizontal_fusion=horizontal_fusion, cache=cache)
        self.stats.builds += 1
        if isinstance(cache, KernelCache):
            if cache.stats.hits > before:
                self.stats.kernel_cache_hits += 1
            else:
                self.stats.kernel_cache_misses += 1
        return kernel

    def run(
        self,
        func: PrimFunc,
        bindings: Optional[Mapping[str, np.ndarray]] = None,
        horizontal_fusion: bool = True,
    ) -> Dict[str, np.ndarray]:
        """Build (cached) and execute *func*, returning all buffer arrays."""
        kernel = self.build(func, horizontal_fusion=horizontal_fusion)
        return self.run_kernel(kernel, bindings)

    def run_kernel(
        self, kernel: Kernel, bindings: Optional[Mapping[str, np.ndarray]] = None
    ) -> Dict[str, np.ndarray]:
        """Execute an already-built kernel with the session's engine."""
        result = kernel.run(bindings, engine=self.engine)
        if kernel.last_engine == "vectorized":
            self.stats.vectorized_runs += 1
        else:
            self.stats.interpreted_runs += 1
        return result

    # -- format decomposition --------------------------------------------------
    def _memoized_format(self, key: str, build_entry):
        """LRU-memoise one derived-format entry, tracking hit/miss stats."""
        hit = self._formats.get(key)
        if hit is not None:
            self._formats.move_to_end(key)
            self.stats.format_cache_hits += 1
            return hit
        self.stats.format_cache_misses += 1
        entry = build_entry()
        self._formats[key] = entry
        while len(self._formats) > self.format_cache_capacity:
            self._formats.popitem(last=False)
        return entry

    def decompose_hyb(self, csr, num_col_parts: int = 1, num_buckets: Optional[int] = None):
        """``HybFormat.from_csr`` memoised by sparsity content and parameters."""
        from ..formats.hyb import HybFormat

        key = _content_key(
            "hyb", csr.shape, csr.indptr, csr.indices, csr.data, num_col_parts, num_buckets
        )
        return self._memoized_format(
            key,
            lambda: HybFormat.from_csr(csr, num_col_parts=num_col_parts, num_buckets=num_buckets),
        )

    def decompose_bsr(self, csr, block_size: int):
        """``BSRMatrix.from_csr`` memoised by sparsity content and block size.

        Args:
            csr: The source :class:`~repro.formats.csr.CSRMatrix`.
            block_size: Square block edge length.

        Returns:
            The cached :class:`~repro.formats.bsr.BSRMatrix` view.
        """
        from ..formats.bsr import BSRMatrix

        key = _content_key("bsr", csr.shape, csr.indptr, csr.indices, csr.data, block_size)
        return self._memoized_format(key, lambda: BSRMatrix.from_csr(csr, block_size))

    # -- operators -------------------------------------------------------------
    def spmm(
        self,
        csr,
        features: np.ndarray,
        format: str = "csr",
        num_col_parts: int = 1,
        num_buckets: Optional[int] = None,
    ) -> np.ndarray:
        """``A @ X`` through the full compile/execute pipeline.

        Args:
            csr: The sparse matrix (:class:`~repro.formats.csr.CSRMatrix`).
            features: Dense operand of shape ``(cols, feat)``.
            format: ``"csr"`` runs the Figure-3 CSR program; ``"hyb"``
                decomposes into the composable ``hyb`` format first (cached)
                and runs the per-bucket ELL programs.
            num_col_parts: Column partitions of the ``hyb`` decomposition.
            num_buckets: Bucket count of the ``hyb`` decomposition.

        Returns:
            The dense product, shape ``(rows, feat)``.
        """
        from ..ops.spmm import build_spmm_hyb_program, build_spmm_program

        features = np.asarray(features, dtype=np.float32)
        feat_size = features.shape[1]
        if format == "csr":
            func = build_spmm_program(csr, feat_size, features)
        elif format == "hyb":
            hyb = self.decompose_hyb(csr, num_col_parts=num_col_parts, num_buckets=num_buckets)
            func = build_spmm_hyb_program(hyb, feat_size, features)
        else:
            raise ValueError(f"unknown SpMM format {format!r}; use 'csr' or 'hyb'")
        out = self.run(func)
        return out["C"].reshape(csr.rows, feat_size)

    def sddmm(self, csr, x: np.ndarray, y: np.ndarray, fuse_ij: bool = True) -> np.ndarray:
        """Sampled dense-dense matmul at the non-zeros of ``csr``.

        Args:
            csr: The sampling structure (values scale each edge score).
            x: Dense operand of shape ``(rows, feat)``.
            y: Dense operand of shape ``(feat, cols)``.
            fuse_ij: Iterate the (row, edge) axes as one fused loop.

        Returns:
            The new edge values in CSR order, shape ``(nnz,)``.
        """
        from ..ops.sddmm import build_sddmm_program

        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.float32)
        func = build_sddmm_program(csr, x.shape[1], x, y, fuse_ij=fuse_ij)
        out = self.run(func)
        return out["OUT"][: csr.nnz]

    def pruned_spmm(self, bsr, x: np.ndarray) -> np.ndarray:
        """``W @ X`` with a BSR (block-pruned) weight matrix.

        Args:
            bsr: The pruned weights (:class:`~repro.formats.bsr.BSRMatrix`).
            x: Dense activation of shape ``(in_features, seq_len)``.

        Returns:
            The product, shape ``(out_features, seq_len)``.
        """
        from ..ops.pruned_spmm import build_pruned_spmm_bsr_program

        x = np.asarray(x, dtype=np.float32)
        func = build_pruned_spmm_bsr_program(bsr, x.shape[1], x)
        out = self.run(func)
        return out["Y"].reshape(bsr.shape[0], x.shape[1])

    def batched_spmm(
        self,
        csr,
        features: np.ndarray,
        format: str = "csr",
        block_size: int = 16,
    ) -> np.ndarray:
        """Multi-head SpMM ``O[h] = A @ X[h]`` with a shared sparse mask.

        The head axis is a dense batch loop of the generated program, so the
        vectorized executor flattens it into lanes alongside rows and
        features.

        Args:
            csr: The shared mask (:class:`~repro.formats.csr.CSRMatrix`).
            features: Per-head operands, shape ``(heads, cols, feat)``.
            format: ``"csr"`` for the scalar program, ``"bsr"`` for the
                block program over the cached BSR decomposition.
            block_size: BSR block size (``format="bsr"`` only).

        Returns:
            The per-head products, shape ``(heads, rows, feat)``.
        """
        from ..ops.batched import build_batched_spmm_bsr_program, build_batched_spmm_program

        features = np.asarray(features, dtype=np.float32)
        if features.ndim != 3:
            raise ValueError("features must be (heads, cols, feat)")
        heads, cols, feat = features.shape
        if cols != csr.cols:
            raise ValueError(f"features have {cols} rows per head, expected {csr.cols}")
        if format == "csr":
            func = build_batched_spmm_program(csr, heads, feat, features)
            out = self.run(func)
            return out["C"].reshape(heads, csr.rows, feat)
        if format == "bsr":
            bsr = self.decompose_bsr(csr, block_size)
            padded = _pad_axis(features, axis=1, length=bsr.shape[1])
            func = build_batched_spmm_bsr_program(bsr, heads, feat, padded)
            out = self.run(func)
            return out["C"].reshape(heads, bsr.shape[0], feat)[:, : csr.rows]
        raise ValueError(f"unknown batched-SpMM format {format!r}; use 'csr' or 'bsr'")

    def batched_sddmm(
        self,
        csr,
        q: np.ndarray,
        k: np.ndarray,
        format: str = "csr",
        block_size: int = 16,
        fuse_ij: bool = True,
        scale: Optional[float] = None,
    ) -> np.ndarray:
        """Multi-head SDDMM ``S[h] = (Q[h] @ K[h]) * mask`` at the mask's nnz.

        Args:
            csr: The shared mask.
            q: Per-head queries, shape ``(heads, rows, feat)``.
            k: Per-head keys, shape ``(heads, feat, cols)``.
            format: ``"csr"`` (fused edge loop) or ``"bsr"`` (per-block
                matmuls over the cached BSR decomposition; requires a
                block-aligned mask).
            block_size: BSR block size (``format="bsr"`` only).
            fuse_ij: Iterate the (row, edge) axes as one fused loop
                (``format="csr"`` only).
            scale: Optional score scaling (e.g. ``1/sqrt(d)``) applied by a
                pointwise rescaling iteration inside the same kernel.

        Returns:
            Per-head edge scores in CSR order, shape ``(heads, nnz)``.
        """
        from ..ops.batched import (
            bsr_element_permutation,
            build_batched_sddmm_bsr_program,
            build_batched_sddmm_program,
        )

        q = np.asarray(q, dtype=np.float32)
        k = np.asarray(k, dtype=np.float32)
        if q.ndim != 3 or k.ndim != 3:
            raise ValueError("q and k must be 3-D (heads, ., .)")
        heads, _, feat = q.shape
        if format == "csr":
            func = build_batched_sddmm_program(
                csr, heads, feat, q, k, fuse_ij=fuse_ij, scale=scale
            )
            out = self.run(func)
            return out["OUT"].reshape(heads, csr.nnz)
        if format == "bsr":
            bsr = self.decompose_bsr(csr, block_size)
            # The CSR-order permutation is a pure function of the (cached)
            # block structure; memoise it so run-many calls skip the
            # BSR-to-CSR conversion.
            perm_key = _content_key("bsr_perm", csr.shape, csr.indptr, csr.indices, block_size)
            perm = self._memoized_format(
                perm_key, lambda: bsr_element_permutation(csr, bsr)
            )
            q_pad = _pad_axis(q, axis=1, length=bsr.shape[0])
            k_pad = _pad_axis(k, axis=2, length=bsr.shape[1])
            func = build_batched_sddmm_bsr_program(bsr, heads, feat, q_pad, k_pad, scale=scale)
            out = self.run(func)
            blocks = out["OUT"].reshape(heads, -1)
            return blocks[:, perm]
        raise ValueError(f"unknown batched-SDDMM format {format!r}; use 'csr' or 'bsr'")

    def rgms(self, adjacency, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Relational gather-matmul-scatter over a CSF adjacency tensor.

        One program per adjacency structure: the relation dimension unrolls
        into per-relation sparse iterations that share the output buffer, so
        repeated calls (RGCN layers, forward passes) reuse one cached build.

        Args:
            adjacency: :class:`~repro.formats.csf.CSFTensor` of shape
                ``(R, n, n)``.
            x: Node features, shape ``(n, d_in)``.
            w: Per-relation weights, shape ``(R, d_in, d_out)``.

        Returns:
            Aggregated features, shape ``(n, d_out)``.
        """
        from ..ops.rgms import build_rgms_program

        x = np.asarray(x, dtype=np.float32)
        w = np.asarray(w, dtype=np.float32)
        if x.ndim != 2 or w.ndim != 3:
            raise ValueError("x must be (n, d_in) and w (R, d_in, d_out)")
        func = build_rgms_program(adjacency, x.shape[1], w.shape[2], x, w)
        out = self.run(func)
        return out["Y"].reshape(adjacency.shape[1], w.shape[2])

    def sparse_conv(self, problem, features: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Fused gather-GEMM-scatter sparse convolution over kernel maps.

        Args:
            problem: :class:`~repro.ops.sparse_conv.SparseConvProblem`
                describing the layer's ELL(1) kernel-map relations.
            features: Input voxel features, ``(num_in_points, in_channels)``.
            weights: Kernel weights,
                ``(kernel_volume, in_channels, out_channels)``.

        Returns:
            Output voxel features, ``(num_out_points, out_channels)``.
        """
        from ..ops.sparse_conv import build_sparse_conv_program

        func = build_sparse_conv_program(problem, features, weights)
        out = self.run(func)
        return out["Y"].reshape(problem.num_out_points, problem.out_channels)

    def __repr__(self) -> str:
        return f"Session(engine={self.engine!r}, stats={self.stats.as_dict()})"


_DEFAULT_SESSION: Optional[Session] = None


def get_default_session() -> Session:
    """The process-wide session used by module-level operator helpers."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        from ..core.codegen.cache import global_kernel_cache

        _DEFAULT_SESSION = Session(cache=global_kernel_cache())
    return _DEFAULT_SESSION
