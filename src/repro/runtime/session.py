"""Session: the compile-once/run-many entry point of the runtime.

A :class:`Session` bundles everything between "here is a sparse matrix" and
"here is the result array":

* **format decomposition caching** — composable-format decompositions
  (``hyb(c, k)`` today) are memoised by sparsity-structure content, so the
  tuner and repeated operator calls never re-bucket the same matrix;
* **kernel building with structural caching** — every ``build()`` goes
  through the session's :class:`~repro.core.codegen.cache.KernelCache`, so
  identical programs are lowered once;
* **execution engine selection** — kernels run on the vectorized fast path
  with automatic interpreter fallback, and the session records which engine
  served each run.

Operator-level helpers (:meth:`Session.spmm`, :meth:`Session.sddmm`,
:meth:`Session.pruned_spmm`) wrap the stage-I program builders in
:mod:`repro.ops` and return plain NumPy arrays.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

import numpy as np

from ..core.codegen.build import Kernel, build
from ..core.codegen.cache import KernelCache
from ..core.program import PrimFunc


@dataclass
class SessionStats:
    """Counters describing the compile/run activity of one session."""

    builds: int = 0
    kernel_cache_hits: int = 0
    kernel_cache_misses: int = 0
    format_cache_hits: int = 0
    format_cache_misses: int = 0
    vectorized_runs: int = 0
    interpreted_runs: int = 0

    @property
    def runs(self) -> int:
        return self.vectorized_runs + self.interpreted_runs

    def as_dict(self) -> Dict[str, int]:
        return {
            "builds": self.builds,
            "kernel_cache_hits": self.kernel_cache_hits,
            "kernel_cache_misses": self.kernel_cache_misses,
            "format_cache_hits": self.format_cache_hits,
            "format_cache_misses": self.format_cache_misses,
            "vectorized_runs": self.vectorized_runs,
            "interpreted_runs": self.interpreted_runs,
        }


def _content_key(*parts: Any) -> str:
    digest = hashlib.sha1()
    for part in parts:
        if isinstance(part, np.ndarray):
            digest.update(np.ascontiguousarray(part).tobytes())
        else:
            digest.update(repr(part).encode())
        digest.update(b"|")
    return digest.hexdigest()


class Session:
    """Compile-once/run-many facade over decomposition, build and execution.

    Parameters
    ----------
    cache:
        The kernel cache to build through.  ``None`` creates a private cache;
        pass :func:`~repro.core.codegen.cache.global_kernel_cache` to share
        lowering work with plain ``build()`` calls, or ``False`` to disable
        kernel caching.
    engine:
        Execution backend passed to :meth:`Kernel.run`: ``"auto"`` (default),
        ``"vectorized"`` or ``"interpret"``.
    format_cache_capacity:
        LRU bound on memoised format decompositions (each entry holds a full
        decomposition of one matrix, so this bounds session memory).
    """

    def __init__(
        self,
        cache: Optional[KernelCache] = None,
        engine: str = "auto",
        format_cache_capacity: int = 64,
    ):
        if format_cache_capacity <= 0:
            raise ValueError("format_cache_capacity must be positive")
        self.cache: Any = KernelCache() if cache is None else cache
        self.engine = engine
        self.stats = SessionStats()
        self.format_cache_capacity = int(format_cache_capacity)
        self._formats: "OrderedDict[str, Any]" = OrderedDict()

    # -- compilation -----------------------------------------------------------
    def build(self, func: PrimFunc, horizontal_fusion: bool = True) -> Kernel:
        """Build *func* through the session's structural kernel cache."""
        cache = self.cache
        before = cache.stats.hits if isinstance(cache, KernelCache) else 0
        kernel = build(func, horizontal_fusion=horizontal_fusion, cache=cache)
        self.stats.builds += 1
        if isinstance(cache, KernelCache):
            if cache.stats.hits > before:
                self.stats.kernel_cache_hits += 1
            else:
                self.stats.kernel_cache_misses += 1
        return kernel

    def run(
        self,
        func: PrimFunc,
        bindings: Optional[Mapping[str, np.ndarray]] = None,
        horizontal_fusion: bool = True,
    ) -> Dict[str, np.ndarray]:
        """Build (cached) and execute *func*, returning all buffer arrays."""
        kernel = self.build(func, horizontal_fusion=horizontal_fusion)
        return self.run_kernel(kernel, bindings)

    def run_kernel(
        self, kernel: Kernel, bindings: Optional[Mapping[str, np.ndarray]] = None
    ) -> Dict[str, np.ndarray]:
        """Execute an already-built kernel with the session's engine."""
        result = kernel.run(bindings, engine=self.engine)
        if kernel.last_engine == "vectorized":
            self.stats.vectorized_runs += 1
        else:
            self.stats.interpreted_runs += 1
        return result

    # -- format decomposition --------------------------------------------------
    def decompose_hyb(self, csr, num_col_parts: int = 1, num_buckets: Optional[int] = None):
        """``HybFormat.from_csr`` memoised by sparsity content and parameters."""
        from ..formats.hyb import HybFormat

        key = _content_key(
            "hyb", csr.shape, csr.indptr, csr.indices, csr.data, num_col_parts, num_buckets
        )
        hit = self._formats.get(key)
        if hit is not None:
            self._formats.move_to_end(key)
            self.stats.format_cache_hits += 1
            return hit
        self.stats.format_cache_misses += 1
        hyb = HybFormat.from_csr(csr, num_col_parts=num_col_parts, num_buckets=num_buckets)
        self._formats[key] = hyb
        while len(self._formats) > self.format_cache_capacity:
            self._formats.popitem(last=False)
        return hyb

    # -- operators -------------------------------------------------------------
    def spmm(
        self,
        csr,
        features: np.ndarray,
        format: str = "csr",
        num_col_parts: int = 1,
        num_buckets: Optional[int] = None,
    ) -> np.ndarray:
        """``A @ X`` through the full compile/execute pipeline.

        ``format="csr"`` runs the Figure-3 CSR program; ``format="hyb"``
        decomposes into the composable ``hyb`` format first (cached) and runs
        the per-bucket ELL programs.
        """
        from ..ops.spmm import build_spmm_hyb_program, build_spmm_program

        features = np.asarray(features, dtype=np.float32)
        feat_size = features.shape[1]
        if format == "csr":
            func = build_spmm_program(csr, feat_size, features)
        elif format == "hyb":
            hyb = self.decompose_hyb(csr, num_col_parts=num_col_parts, num_buckets=num_buckets)
            func = build_spmm_hyb_program(hyb, feat_size, features)
        else:
            raise ValueError(f"unknown SpMM format {format!r}; use 'csr' or 'hyb'")
        out = self.run(func)
        return out["C"].reshape(csr.rows, feat_size)

    def sddmm(self, csr, x: np.ndarray, y: np.ndarray, fuse_ij: bool = True) -> np.ndarray:
        """Sampled dense-dense matmul; returns the new edge values in CSR order."""
        from ..ops.sddmm import build_sddmm_program

        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.float32)
        func = build_sddmm_program(csr, x.shape[1], x, y, fuse_ij=fuse_ij)
        out = self.run(func)
        return out["OUT"][: csr.nnz]

    def pruned_spmm(self, bsr, x: np.ndarray) -> np.ndarray:
        """``W @ X`` with a BSR (block-pruned) weight matrix."""
        from ..ops.pruned_spmm import build_pruned_spmm_bsr_program

        x = np.asarray(x, dtype=np.float32)
        func = build_pruned_spmm_bsr_program(bsr, x.shape[1], x)
        out = self.run(func)
        return out["Y"].reshape(bsr.shape[0], x.shape[1])

    def __repr__(self) -> str:
        return f"Session(engine={self.engine!r}, stats={self.stats.as_dict()})"


_DEFAULT_SESSION: Optional[Session] = None


def get_default_session() -> Session:
    """The process-wide session used by module-level operator helpers."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        from ..core.codegen.cache import global_kernel_cache

        _DEFAULT_SESSION = Session(cache=global_kernel_cache())
    return _DEFAULT_SESSION
