"""Small NumPy index-arithmetic helpers shared across the package."""

from __future__ import annotations

import numpy as np

#: Upper bound on the number of lanes a single loop nest may expand to before
#: the whole-array engines (vectorized executor, emitted kernels) bail out to
#: the interpreter (guards against memory blowups).  Part of the structural
#: fingerprint: changing it changes which engine serves a cached kernel.
MAX_LANES = 1 << 26


def ragged_arange(counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` without the Python loop.

    The workhorse of ragged-range expansion: both the vectorized executor
    (expanding variable-extent loops into lanes) and the hyb format builder
    (scattering variable-length row pieces into ELL buckets) are built on it.
    """
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
