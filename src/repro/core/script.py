"""Programming interface for building stage-I SparseTIR programs.

The paper's front end is a round-trippable Python dialect (``@T.prim_func``).
This reproduction provides an equivalent, explicit builder API::

    from repro.core.script import ProgramBuilder

    b = ProgramBuilder("spmm")
    I = b.dense_fixed("I", m)
    J = b.sparse_variable("J", parent=I, length=n, nnz=nnz)
    J_ = b.dense_fixed("J_", n)
    K = b.dense_fixed("K", feat_size)
    A = b.match_sparse_buffer("A", [I, J])
    B = b.match_sparse_buffer("B", [J_, K])
    C = b.match_sparse_buffer("C", [I, K])
    with b.sp_iter([I, J, K], "SRS", "spmm") as (i, j, k):
        b.init(C[i, k], 0.0)
        b.compute(C[i, k], C[i, k] + A[i, j] * B[j, k])
    func = b.finish()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import axes as _axes
from .axes import Axis
from .buffers import SparseBuffer, match_sparse_buffer
from .expr import BufferLoad, Expr, Var, wrap
from .program import STAGE_COORDINATE, PrimFunc
from .sparse_iteration import AxisOrGroup, SparseIteration, flatten_axes, fuse
from .stmt import BufferStore, SeqStmt, Stmt


class ProgramBuilder:
    """Imperative builder assembling a stage-I :class:`PrimFunc`."""

    def __init__(self, name: str):
        self.name = name
        self._axes: List[Axis] = []
        self._buffers: List[SparseBuffer] = []
        self._iterations: List[SparseIteration] = []
        self._current: Optional[_IterationFrame] = None
        self._finished = False

    # -- axes ------------------------------------------------------------------
    def dense_fixed(self, name: str, length: int, idtype: str = "int32") -> Axis:
        return self._register_axis(_axes.dense_fixed(name, length, idtype))

    def dense_variable(
        self,
        name: str,
        parent: Axis,
        length: int,
        nnz: int,
        indptr: Optional[np.ndarray] = None,
        idtype: str = "int32",
    ) -> Axis:
        return self._register_axis(
            _axes.dense_variable(name, parent, length, nnz, indptr, idtype)
        )

    def sparse_fixed(
        self,
        name: str,
        parent: Axis,
        length: int,
        nnz_cols: int,
        indices: Optional[np.ndarray] = None,
        idtype: str = "int32",
    ) -> Axis:
        return self._register_axis(
            _axes.sparse_fixed(name, parent, length, nnz_cols, indices, idtype)
        )

    def sparse_variable(
        self,
        name: str,
        parent: Axis,
        length: int,
        nnz: int,
        indptr: Optional[np.ndarray] = None,
        indices: Optional[np.ndarray] = None,
        idtype: str = "int32",
    ) -> Axis:
        return self._register_axis(
            _axes.sparse_variable(name, parent, length, nnz, indptr, indices, idtype)
        )

    def _register_axis(self, axis: Axis) -> Axis:
        if any(existing.name == axis.name for existing in self._axes):
            raise ValueError(f"duplicate axis name {axis.name!r}")
        self._axes.append(axis)
        return axis

    # -- buffers ------------------------------------------------------------------
    def match_sparse_buffer(
        self,
        name: str,
        axes: Sequence[Axis],
        dtype: str = "float32",
        data: Optional[np.ndarray] = None,
    ) -> SparseBuffer:
        if any(existing.name == name for existing in self._buffers):
            raise ValueError(f"duplicate buffer name {name!r}")
        buffer = match_sparse_buffer(name, axes, dtype, data)
        self._buffers.append(buffer)
        return buffer

    # Alias mirroring common usage in examples.
    sparse_buffer = match_sparse_buffer

    # -- sparse iterations -----------------------------------------------------
    @contextmanager
    def sp_iter(
        self, axes: Sequence[AxisOrGroup], kinds: str, name: str
    ) -> Iterator[Tuple[Var, ...]]:
        """Open a sparse iteration; yields one iterator variable per axis."""
        if self._current is not None:
            raise RuntimeError("nested sp_iter contexts are not supported by the builder; "
                               "build nested iterations explicitly with SparseIteration")
        flat = flatten_axes(axes)
        iter_vars = tuple(Var(axis.name.lower() + "_it", "int32") for axis in flat)
        frame = _IterationFrame(name, tuple(axes), kinds, iter_vars)
        self._current = frame
        try:
            yield iter_vars
        finally:
            self._current = None
        if not frame.stores:
            raise ValueError(f"sparse iteration {name!r} has an empty body")
        body: Stmt = SeqStmt(frame.stores) if len(frame.stores) > 1 else frame.stores[0]
        init: Optional[Stmt] = None
        if frame.inits:
            init = SeqStmt(frame.inits) if len(frame.inits) > 1 else frame.inits[0]
        self._iterations.append(
            SparseIteration(name, frame.axes, kinds, iter_vars, body, init=init)
        )

    def compute(self, target: BufferLoad, value: Union[Expr, float, int]) -> None:
        """Emit ``target = value`` inside the current sparse iteration."""
        frame = self._require_frame()
        frame.stores.append(BufferStore(target.buffer, target.indices, wrap(value)))

    def init(self, target: BufferLoad, value: Union[Expr, float, int]) -> None:
        """Emit an initialisation statement (``with init():`` in the paper)."""
        frame = self._require_frame()
        frame.inits.append(BufferStore(target.buffer, target.indices, wrap(value)))

    def _require_frame(self) -> "_IterationFrame":
        if self._current is None:
            raise RuntimeError("compute()/init() must be called inside a sp_iter context")
        return self._current

    # -- finish ------------------------------------------------------------------
    def finish(self) -> PrimFunc:
        """Produce the stage-I PrimFunc."""
        if self._finished:
            raise RuntimeError("finish() called twice on the same builder")
        if not self._iterations:
            raise ValueError(f"program {self.name!r} has no sparse iterations")
        self._finished = True
        body: Stmt = (
            SeqStmt(self._iterations) if len(self._iterations) > 1 else self._iterations[0]
        )
        return PrimFunc(
            self.name,
            axes=self._axes,
            buffers=self._buffers,
            body=body,
            stage=STAGE_COORDINATE,
        )


class EmitContext:
    """Namespace-aware emission helper for composing operators in one program.

    The graph-level fusion pass merges the stage-I iterations of several
    operators into one :class:`PrimFunc`.  Each operator's ``emit_*`` function
    receives an ``EmitContext`` instead of a bare builder:

    * :meth:`name` prefixes every axis/buffer/iteration name with the
      context's namespace (``ns``), so two fused SpMMs do not collide on
      ``"I"``/``"A"``; with the default empty namespace the emitted program is
      byte-identical to the pre-fusion standalone builders.
    * :meth:`csr_axes` / :meth:`bsr_axes` memoise the sparse (row, column)
      axis pair **per structure object**, so operators fused over the same
      sparsity structure share axis objects — and stage-II lowering then
      reads producer outputs position-directly instead of emitting a
      coordinate binary search.

    The ``ns`` attribute is mutated between nodes by the fusion assembler;
    the shared-axis memo deliberately survives those mutations.
    """

    def __init__(self, builder: ProgramBuilder, ns: str = ""):
        self.builder = builder
        self.ns = ns
        # key -> (axes tuple, structure object); the structure reference keeps
        # the keyed object alive so its id() can never be recycled.
        self._shared: dict = {}

    def name(self, base: str) -> str:
        return f"{self.ns}{base}"

    # -- plain (per-node) axes and buffers --------------------------------------
    def dense_fixed(self, base: str, length: int, idtype: str = "int32") -> Axis:
        return self.builder.dense_fixed(self.name(base), length, idtype)

    def buffer(
        self,
        base: str,
        axes: Sequence[Axis],
        dtype: str = "float32",
        data: Optional[np.ndarray] = None,
    ) -> SparseBuffer:
        return self.builder.match_sparse_buffer(self.name(base), axes, dtype=dtype, data=data)

    # -- shared sparse axes ------------------------------------------------------
    def csr_axes(self, csr, row: str = "I", col: str = "J") -> Tuple[Axis, Axis]:
        """The (dense row, sparse column) axis pair of a CSR structure.

        Shared by structure object identity: every operator in the program
        that iterates the same ``csr`` object gets the same axis objects.
        """
        key = ("csr", id(csr))
        hit = self._shared.get(key)
        if hit is None:
            i_axis = self.builder.dense_fixed(self.name(row), csr.rows)
            j_axis = self.builder.sparse_variable(
                self.name(col), parent=i_axis, length=csr.cols, nnz=csr.nnz,
                indptr=csr.indptr, indices=csr.indices,
            )
            hit = ((i_axis, j_axis), csr)
            self._shared[key] = hit
        return hit[0]

    def bsr_axes(self, bsr, row: str = "IB", col: str = "JB") -> Tuple[Axis, Axis]:
        """The (dense block-row, sparse block-column) axis pair of a BSR structure."""
        key = ("bsr", id(bsr))
        hit = self._shared.get(key)
        if hit is None:
            ib_axis = self.builder.dense_fixed(self.name(row), bsr.block_rows)
            jb_axis = self.builder.sparse_variable(
                self.name(col), parent=ib_axis, length=bsr.block_cols, nnz=bsr.num_blocks,
                indptr=bsr.indptr, indices=bsr.indices,
            )
            hit = ((ib_axis, jb_axis), bsr)
            self._shared[key] = hit
        return hit[0]

    # -- iteration pass-throughs -------------------------------------------------
    def sp_iter(self, axes: Sequence[AxisOrGroup], kinds: str, base_name: str):
        return self.builder.sp_iter(axes, kinds, self.name(base_name))

    def compute(self, target: BufferLoad, value) -> None:
        self.builder.compute(target, value)

    def init(self, target: BufferLoad, value) -> None:
        self.builder.init(target, value)


class _IterationFrame:
    def __init__(self, name: str, axes: Tuple[AxisOrGroup, ...], kinds: str, iter_vars: Tuple[Var, ...]):
        self.name = name
        self.axes = axes
        self.kinds = kinds
        self.iter_vars = iter_vars
        self.stores: List[BufferStore] = []
        self.inits: List[BufferStore] = []


__all__ = ["EmitContext", "ProgramBuilder", "fuse"]
