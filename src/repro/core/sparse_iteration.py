"""The stage-I sparse iteration construct.

A sparse iteration (``sp_iter`` in the paper) names an iteration space as an
ordered list of axes, tags every axis as spatial ("S") or reduction ("R"),
binds one iterator variable per axis, and contains a body of statements that
access sparse buffers in *coordinate space*.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple, Union

from .axes import Axis
from .expr import Expr, Var
from .stmt import Stmt, substitute_stmt

ITER_SPATIAL = "S"
ITER_REDUCTION = "R"


class FusedAxisGroup:
    """Marker produced by :func:`fuse` for use inside a sparse iteration.

    The fused group keeps the original axes; sparse iteration lowering emits
    a single loop over the whole (flattened) non-zero space of the group,
    which is the behaviour of the ``sparse_fuse`` schedule in Section 3.2.2.
    """

    def __init__(self, axes: Sequence[Axis]):
        if len(axes) < 2:
            raise ValueError("fuse() requires at least two axes")
        self.axes = tuple(axes)

    @property
    def name(self) -> str:
        return "fused_" + "_".join(axis.name for axis in self.axes)

    def __repr__(self) -> str:
        return f"fuse({', '.join(axis.name for axis in self.axes)})"


def fuse(*axes: Axis) -> FusedAxisGroup:
    """Group axes so they are iterated by a single fused loop."""
    return FusedAxisGroup(axes)


AxisOrGroup = Union[Axis, FusedAxisGroup]


class SparseIteration(Stmt):
    """``with sp_iter([...], "SRS", name) as [...]`` — a stage-I construct."""

    def __init__(
        self,
        name: str,
        axes: Sequence[AxisOrGroup],
        kinds: str,
        iter_vars: Sequence[Var],
        body: Stmt,
        init: Optional[Stmt] = None,
    ):
        flat_axes = flatten_axes(axes)
        if len(kinds) != len(flat_axes):
            raise ValueError(
                f"sparse iteration {name!r}: {len(flat_axes)} axes but kinds string "
                f"{kinds!r} has length {len(kinds)}"
            )
        if any(k not in (ITER_SPATIAL, ITER_REDUCTION) for k in kinds):
            raise ValueError(f"sparse iteration {name!r}: kinds must contain only 'S'/'R'")
        if len(iter_vars) != len(flat_axes):
            raise ValueError(
                f"sparse iteration {name!r}: {len(flat_axes)} axes but "
                f"{len(iter_vars)} iterator variables"
            )
        self.name = name
        self.axes = tuple(axes)
        self.kinds = kinds
        self.iter_vars = tuple(iter_vars)
        self.body = body
        self.init = init

    # -- queries --------------------------------------------------------------
    @property
    def flat_axes(self) -> Tuple[Axis, ...]:
        """All axes with fused groups expanded, in order."""
        return tuple(flatten_axes(self.axes))

    def axis_of(self, var: Var) -> Axis:
        """Return the axis bound to an iterator variable."""
        for axis, v in zip(self.flat_axes, self.iter_vars):
            if v is var:
                return axis
        raise KeyError(f"{var!r} is not an iterator of sparse iteration {self.name!r}")

    def var_of(self, axis: Axis) -> Var:
        """Return the iterator variable bound to an axis."""
        for a, v in zip(self.flat_axes, self.iter_vars):
            if a is axis:
                return v
        raise KeyError(f"axis {axis.name!r} is not part of sparse iteration {self.name!r}")

    def kind_of(self, var: Var) -> str:
        for k, v in zip(self.kinds, self.iter_vars):
            if v is var:
                return k
        raise KeyError(f"{var!r} is not an iterator of sparse iteration {self.name!r}")

    def spatial_vars(self) -> List[Var]:
        return [v for k, v in zip(self.kinds, self.iter_vars) if k == ITER_SPATIAL]

    def reduction_vars(self) -> List[Var]:
        return [v for k, v in zip(self.kinds, self.iter_vars) if k == ITER_REDUCTION]

    # -- rewriting --------------------------------------------------------------
    def with_body(self, body: Stmt, init: Optional[Stmt] = None) -> "SparseIteration":
        return SparseIteration(
            self.name, self.axes, self.kinds, self.iter_vars, body,
            init=init if init is not None else self.init,
        )

    def substitute(self, mapping: Mapping[Var, Expr]) -> "SparseIteration":
        body = substitute_stmt(self.body, mapping)
        init = None if self.init is None else substitute_stmt(self.init, mapping)
        return self.with_body(body, init)

    def __repr__(self) -> str:
        names = []
        for item in self.axes:
            names.append(item.name if isinstance(item, Axis) else repr(item))
        head = f"sp_iter([{', '.join(names)}], {self.kinds!r}, {self.name!r})"
        return head + f": {self.body!r}"


def flatten_axes(axes: Sequence[AxisOrGroup]) -> List[Axis]:
    """Expand fused groups into the flat list of member axes."""
    flat: List[Axis] = []
    for item in axes:
        if isinstance(item, FusedAxisGroup):
            flat.extend(item.axes)
        elif isinstance(item, Axis):
            flat.append(item)
        else:
            raise TypeError(f"expected Axis or FusedAxisGroup, got {type(item)}")
    return flat


def fused_groups(axes: Sequence[AxisOrGroup]) -> List[Tuple[Axis, ...]]:
    """Return the tuples of axes that are fused together."""
    return [item.axes for item in axes if isinstance(item, FusedAxisGroup)]
