"""Stage-I (coordinate space) transformations: schedules and format decomposition."""

from .schedules import sparse_fuse, sparse_reorder
from .format_rewrite import FormatRewriteRule, decompose_format

__all__ = ["sparse_reorder", "sparse_fuse", "FormatRewriteRule", "decompose_format"]
