"""Format decomposition (Section 3.2.1 and Appendix A).

``decompose_format`` rewrites a stage-I program so that the computation over
one sparse buffer is carried out over a list of *composable formats*: each
:class:`FormatRewriteRule` contributes a new set of axes, a new sparse buffer,
a generated data-copy iteration, and a rewritten compute iteration.  The
original compute iteration on the monolithic format is removed, which mirrors
Figure 5 of the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..axes import Axis
from ..buffers import SparseBuffer
from ..expr import BufferLoad, Expr, Var, substitute, wrap
from ..program import STAGE_COORDINATE, PrimFunc
from ..sparse_iteration import ITER_SPATIAL, SparseIteration
from ..stmt import BufferStore, SeqStmt, Stmt, collect_buffer_loads, collect_buffer_stores, substitute_stmt


class FormatRewriteRule:
    """Description of one composable-format rewrite.

    Parameters
    ----------
    name:
        Suffix identifying the rewrite (e.g. ``"bsr_2"``); generated axes,
        buffers and iterations carry this suffix.
    new_axes:
        The axes describing the new format, in the order of the new buffer's
        dimensions.  Axes must carry concrete ``indptr``/``indices`` arrays if
        the decomposed program is to be executed.
    buffer_name:
        Name of the sparse buffer of the original program being rewritten
        (e.g. ``"A"``).
    original_axes:
        Names of the original buffer's axes covered by this rewrite, e.g.
        ``["I", "J"]``.
    axis_map:
        Mapping from each original axis name to the list of new axis names
        that jointly replace it, e.g. ``{"I": ["IO", "II"], "J": ["JO", "JI"]}``.
    idx_map:
        Affine map from original coordinates to new coordinates
        (``A[i, j] == A_new[idx_map(i, j)]``), taking one expression per
        original axis and returning one per new axis.
    inv_idx_map:
        Inverse affine map from new coordinates to original coordinates.
    dtype:
        Value dtype of the generated buffer (defaults to the original's).
    """

    def __init__(
        self,
        name: str,
        new_axes: Sequence[Axis],
        buffer_name: str,
        original_axes: Sequence[str],
        axis_map: Mapping[str, Sequence[str]],
        idx_map: Callable[..., Tuple[Expr, ...]],
        inv_idx_map: Callable[..., Tuple[Expr, ...]],
        dtype: Optional[str] = None,
    ):
        self.name = name
        self.new_axes = list(new_axes)
        self.buffer_name = buffer_name
        self.original_axes = list(original_axes)
        self.axis_map = {k: list(v) for k, v in axis_map.items()}
        self.idx_map = idx_map
        self.inv_idx_map = inv_idx_map
        self.dtype = dtype
        self._validate()

    def _validate(self) -> None:
        new_names = {axis.name for axis in self.new_axes}
        for original, targets in self.axis_map.items():
            if original not in self.original_axes:
                raise ValueError(
                    f"rule {self.name!r}: axis_map key {original!r} not in original_axes"
                )
            for target in targets:
                if target not in new_names:
                    raise ValueError(
                        f"rule {self.name!r}: axis_map target {target!r} is not a new axis"
                    )
        mapped = [t for targets in self.axis_map.values() for t in targets]
        if len(mapped) != len(set(mapped)):
            raise ValueError(f"rule {self.name!r}: a new axis is mapped from two original axes")

    def new_axis(self, name: str) -> Axis:
        for axis in self.new_axes:
            if axis.name == name:
                return axis
        raise KeyError(f"rule {self.name!r} has no new axis named {name!r}")

    def new_buffer_name(self) -> str:
        return f"{self.buffer_name}_{self.name}"


def decompose_format(
    func: PrimFunc,
    rules: Sequence[FormatRewriteRule],
    include_copy: bool = True,
) -> PrimFunc:
    """Apply format decomposition to every sparse iteration that uses the
    rewritten buffer.

    Format *conversion* is the special case of a single rule.  The generated
    program contains, per rule: one copy iteration (unless ``include_copy``
    is false, for the common pre-processed/stationary-matrix case) and one
    compute iteration specialised to the new format.  The original compute
    iteration over the monolithic format is removed.
    """
    if func.stage != STAGE_COORDINATE:
        raise ValueError("decompose_format operates on stage-I programs")
    if not rules:
        raise ValueError("decompose_format requires at least one rule")
    target_names = {rule.buffer_name for rule in rules}
    if len(target_names) != 1:
        raise ValueError("all rules passed to a single decompose_format call must "
                         "rewrite the same buffer")
    buffer_name = target_names.pop()
    original_buffer = func.buffer(buffer_name)

    new_axes: List[Axis] = list(func.axes)
    new_buffers: List[SparseBuffer] = list(func.buffers)
    copy_iterations: List[SparseIteration] = []
    compute_iterations: List[SparseIteration] = []
    removed: List[SparseIteration] = []

    generated: Dict[str, SparseBuffer] = {}
    for rule in rules:
        for axis in rule.new_axes:
            if not any(existing is axis for existing in new_axes):
                new_axes.append(axis)
        new_buffer = SparseBuffer(
            rule.new_buffer_name(), rule.new_axes, rule.dtype or original_buffer.dtype
        )
        generated[rule.name] = new_buffer
        new_buffers.append(new_buffer)
        if include_copy:
            copy_iterations.append(_make_copy_iteration(rule, original_buffer, new_buffer))

    for iteration in func.sparse_iterations():
        if not _uses_buffer(iteration, original_buffer):
            continue
        removed.append(iteration)
        for rule in rules:
            compute_iterations.append(
                _rewrite_compute_iteration(iteration, rule, original_buffer, generated[rule.name])
            )

    if not removed:
        raise ValueError(
            f"decompose_format: no sparse iteration uses buffer {buffer_name!r}"
        )

    kept = [it for it in func.sparse_iterations() if it not in removed]
    body_parts: List[Stmt] = list(copy_iterations) + kept + compute_iterations
    body: Stmt = SeqStmt(body_parts) if len(body_parts) > 1 else body_parts[0]
    result = PrimFunc(
        func.name,
        axes=new_axes,
        buffers=new_buffers,
        body=body,
        stage=STAGE_COORDINATE,
        attrs=dict(func.attrs),
    )
    result.attrs.setdefault("composable_formats", []).extend(rule.name for rule in rules)
    return result


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _uses_buffer(iteration: SparseIteration, buffer: SparseBuffer) -> bool:
    for load in collect_buffer_loads(iteration.body):
        if load.buffer is buffer:
            return True
    for store in collect_buffer_stores(iteration.body):
        if store.buffer is buffer:
            return True
    return False


def _make_copy_iteration(
    rule: FormatRewriteRule, original: SparseBuffer, new_buffer: SparseBuffer
) -> SparseIteration:
    """Generate ``A_new[...] = A[inv_idx_map(...)]`` over the new format."""
    iter_vars = tuple(Var(axis.name.lower() + "_cp", "int32") for axis in rule.new_axes)
    original_coords = rule.inv_idx_map(*iter_vars)
    if not isinstance(original_coords, tuple):
        original_coords = (original_coords,)
    original_coords = tuple(wrap(c) for c in original_coords)
    if len(original_coords) != len(original.axes):
        raise ValueError(
            f"rule {rule.name!r}: inv_idx_map returned {len(original_coords)} coordinates "
            f"but buffer {original.name!r} has {len(original.axes)} axes"
        )
    body = BufferStore(new_buffer, [wrap(v) for v in iter_vars], BufferLoad(original, original_coords))
    kinds = ITER_SPATIAL * len(rule.new_axes)
    return SparseIteration(
        f"copy_{rule.name}", tuple(rule.new_axes), kinds, iter_vars, body
    )


def _rewrite_compute_iteration(
    iteration: SparseIteration,
    rule: FormatRewriteRule,
    original: SparseBuffer,
    new_buffer: SparseBuffer,
) -> SparseIteration:
    """Rewrite one compute iteration for the new format."""
    # 1. Build the new axis list: replace every mapped original axis with its
    #    new axes (in place), keep the rest.
    old_flat = list(iteration.flat_axes)
    old_vars = list(iteration.iter_vars)
    old_kinds = list(iteration.kinds)

    new_axis_list: List[Axis] = []
    new_kinds: List[str] = []
    new_var_list: List[Var] = []
    # iterator variables for the new axes, created once per new axis name
    new_vars_by_name: Dict[str, Var] = {}
    mapped_old_vars: List[Var] = []

    for axis, var, kind in zip(old_flat, old_vars, old_kinds):
        if axis.name in rule.axis_map:
            mapped_old_vars.append(var)
            for target_name in rule.axis_map[axis.name]:
                target_axis = rule.new_axis(target_name)
                new_var = new_vars_by_name.setdefault(
                    target_name, Var(target_name.lower() + f"_{rule.name}", "int32")
                )
                new_axis_list.append(target_axis)
                new_kinds.append(kind)
                new_var_list.append(new_var)
        else:
            new_axis_list.append(axis)
            new_kinds.append(kind)
            new_var_list.append(var)

    # 2. Coordinates of the original (mapped) axes expressed with new vars,
    #    via the inverse index map.  The inverse map takes new coordinates in
    #    new-buffer axis order.
    inv_args = [wrap(new_vars_by_name[a.name]) if a.name in new_vars_by_name else wrap(0)
                for a in rule.new_axes]
    original_coords = rule.inv_idx_map(*inv_args)
    if not isinstance(original_coords, tuple):
        original_coords = (original_coords,)
    original_coords = tuple(wrap(c) for c in original_coords)

    # Substitution for every occurrence of the original iterator variables.
    substitution: Dict[Var, Expr] = {}
    for original_axis_name, coord in zip(rule.original_axes, original_coords):
        for axis, var in zip(old_flat, old_vars):
            if axis.name == original_axis_name:
                substitution[var] = coord

    # 3. Rewrite the body: loads/stores on the original buffer whose indices
    #    are exactly the mapped iteration variables become accesses of the new
    #    buffer with the new iteration variables; everything else goes through
    #    the coordinate substitution.
    new_buffer_indices = [wrap(new_vars_by_name.get(a.name, Var(a.name.lower(), "int32")))
                          for a in rule.new_axes]

    def rewrite_stmt(stmt: Stmt) -> Stmt:
        if isinstance(stmt, SeqStmt):
            return SeqStmt([rewrite_stmt(s) for s in stmt.stmts])
        if isinstance(stmt, BufferStore):
            value = _rewrite_expr(stmt.value)
            if stmt.buffer is original:
                return BufferStore(new_buffer, list(new_buffer_indices), value)
            return BufferStore(stmt.buffer, [_rewrite_expr(i) for i in stmt.indices], value)
        return substitute_stmt(stmt, substitution)

    def _rewrite_expr(expr: Expr) -> Expr:
        if isinstance(expr, BufferLoad) and expr.buffer is original:
            return BufferLoad(new_buffer, list(new_buffer_indices))
        if isinstance(expr, BufferLoad):
            return BufferLoad(expr.buffer, [_rewrite_expr(i) for i in expr.indices])
        from ..expr import BinaryOp, Call, Cast, Not, Select

        if isinstance(expr, BinaryOp):
            return type(expr)(_rewrite_expr(expr.a), _rewrite_expr(expr.b))
        if isinstance(expr, Not):
            return Not(_rewrite_expr(expr.a))
        if isinstance(expr, Select):
            return Select(_rewrite_expr(expr.condition), _rewrite_expr(expr.true_value), _rewrite_expr(expr.false_value))
        if isinstance(expr, Cast):
            return Cast(_rewrite_expr(expr.value), expr.dtype)
        if isinstance(expr, Call):
            return Call(expr.func, [_rewrite_expr(a) for a in expr.args], expr.dtype)
        return substitute(expr, substitution)

    new_body = rewrite_stmt(iteration.body)
    new_init = None if iteration.init is None else rewrite_stmt(iteration.init)
    return SparseIteration(
        f"{iteration.name}_{rule.name}",
        tuple(new_axis_list),
        "".join(new_kinds),
        tuple(new_var_list),
        new_body,
        init=new_init,
    )
