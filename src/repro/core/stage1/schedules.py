"""Stage-I schedule primitives: ``sparse_reorder`` and ``sparse_fuse``.

Both are composable transformations (Section 3.2.2): they rewrite the
coordinate-space program and keep it at stage I.
"""

from __future__ import annotations

from typing import List, Sequence

from ..axes import Axis
from ..program import STAGE_COORDINATE, PrimFunc
from ..sparse_iteration import (
    AxisOrGroup,
    FusedAxisGroup,
    SparseIteration,
    flatten_axes,
)


def sparse_reorder(func: PrimFunc, iteration_name: str, new_order: Sequence[Axis]) -> PrimFunc:
    """Reorder the axes of a sparse iteration.

    The new order must be a permutation of the existing axes and must keep
    every axis after the ancestors it depends on (a sparse/variable axis can
    only be iterated once its parent position is known).
    """
    _require_stage1(func)
    iteration = func.sparse_iteration(iteration_name)
    old_flat = list(iteration.flat_axes)
    new_flat = flatten_axes(new_order)
    if len(new_flat) != len(old_flat) or any(a not in old_flat for a in new_flat):
        raise ValueError(
            "sparse_reorder: new order must be a permutation of the axes of "
            f"{iteration_name!r}"
        )
    _check_dependencies(new_flat)

    # Re-associate kinds and iterator variables with the permuted axes.
    kind_of = {id(a): k for a, k in zip(old_flat, iteration.kinds)}
    var_of = {id(a): v for a, v in zip(old_flat, iteration.iter_vars)}
    new_kinds = "".join(kind_of[id(a)] for a in new_flat)
    new_vars = tuple(var_of[id(a)] for a in new_flat)
    new_iteration = SparseIteration(
        iteration.name, tuple(new_order), new_kinds, new_vars, iteration.body,
        init=iteration.init,
    )
    return func.replace_sparse_iteration(iteration, new_iteration)


def sparse_fuse(func: PrimFunc, iteration_name: str, axes_to_fuse: Sequence[Axis]) -> PrimFunc:
    """Fuse consecutive axes of a sparse iteration into a single loop.

    After fusion, sparse iteration lowering emits one loop over the combined
    non-zero space instead of a nested loop per axis — the SDDMM use case in
    the paper.
    """
    _require_stage1(func)
    if len(axes_to_fuse) < 2:
        raise ValueError("sparse_fuse needs at least two axes")
    iteration = func.sparse_iteration(iteration_name)
    items: List[AxisOrGroup] = list(iteration.axes)
    flat_targets = list(axes_to_fuse)

    # The axes to fuse must appear as consecutive, un-fused items.
    positions = []
    for axis in flat_targets:
        found = None
        for idx, item in enumerate(items):
            if item is axis:
                found = idx
                break
        if found is None:
            raise ValueError(
                f"sparse_fuse: axis {axis.name!r} is not a top-level axis of "
                f"{iteration_name!r} (already fused?)"
            )
        positions.append(found)
    if positions != list(range(positions[0], positions[0] + len(positions))):
        raise ValueError("sparse_fuse: axes must be consecutive in the iteration order")

    group = FusedAxisGroup(flat_targets)
    new_items = items[: positions[0]] + [group] + items[positions[-1] + 1 :]
    new_iteration = SparseIteration(
        iteration.name,
        tuple(new_items),
        iteration.kinds,
        iteration.iter_vars,
        iteration.body,
        init=iteration.init,
    )
    return func.replace_sparse_iteration(iteration, new_iteration)


def _check_dependencies(order: Sequence[Axis]) -> None:
    seen = set()
    for axis in order:
        parent = axis.parent
        if parent is not None and any(parent is a for a in order) and id(parent) not in seen:
            raise ValueError(
                f"sparse_reorder: axis {axis.name!r} depends on {parent.name!r}, "
                "which must come first"
            )
        seen.add(id(axis))


def _require_stage1(func: PrimFunc) -> None:
    if func.stage != STAGE_COORDINATE:
        raise ValueError(f"stage-I schedule applied to a {func.stage} program")
