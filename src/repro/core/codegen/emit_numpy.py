"""Stage-IV source backend: emit a compiled NumPy kernel for a stage-III program.

The vectorized executor (:mod:`repro.runtime.vectorized`) re-plans every call:
it walks the stage-III AST, expands loops into lane arrays, evaluates every
expression over the lanes and scatters the stores.  The *plan* — which lanes
exist, which flat indices every load gathers from, which lanes a structural
zero drops — depends only on the program structure, and the structure is
exactly what the kernel cache fingerprints.  This module walks the lowered
program **once** and fixes that plan into Python source text:

* :func:`emit_numpy_source` returns a standalone module defining
  ``make_kernel(axes, aux, helpers)``.  Its body is the *plan*: batch/loop
  prefixes unrolled into lane index arithmetic (``np.repeat`` / ``np.tile`` /
  ``ragged_arange``), gather indices, structural-zero masks — computed once
  from the structural (``indptr`` / ``indices``) data.
* ``make_kernel`` returns a ``run(arrays)`` closure whose body is the flat
  gather / compute / ``ufunc.at`` scatter sequence — the only part that
  depends on value data, so the only part that runs per call.

Expressions are split between the two zones by what they read: loads from
auxiliary (structural) buffers are **plan** work, loads from value buffers
are **run** work.  Every emitted operation mirrors the corresponding
vectorized-executor operation (same NumPy calls, same lane order, same
masking), so emitted results are bit-identical to both the vectorized
executor and the scalar interpreter.

Programs outside the emitter's fragment (value-dependent loop bounds or
branch conditions, unknown intrinsics, anything the vectorized safety
analysis rejects) raise :class:`UnsupportedForEmission`; callers fall back to
the vectorized tier, so emission is never a correctness risk.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Set

import numpy as np

from ..buffers import _np_dtype
from ..expr import (
    Add,
    And,
    BinaryOp,
    BufferLoad,
    Call,
    Cast,
    Div,
    EQ,
    Expr,
    FloatImm,
    FloorDiv,
    FloorMod,
    GE,
    GT,
    IntImm,
    LE,
    LT,
    Max,
    Min,
    Mul,
    NE,
    Not,
    Or,
    Select,
    StringImm,
    Sub,
    Var,
)
from ..nputils import MAX_LANES, ragged_arange
from ..program import STAGE_LOOP, PrimFunc
from ..stage2.lowering import BINARY_SEARCH, ROW_UPPER_BOUND
from ..stmt import (
    AssertStmt,
    Block,
    BufferStore,
    Evaluate,
    ForLoop,
    IfThenElse,
    LetStmt,
    SeqStmt,
    Stmt,
)

#: Bumped whenever the emitted-source contract changes; participates in the
#: structural fingerprint so stale on-disk source can never be executed.
EMITTER_VERSION = 3

_PLAN = "plan"
_RUN = "run"

_INFIX_OPS = {
    Add: "+",
    Sub: "-",
    Mul: "*",
    FloorDiv: "//",
    FloorMod: "%",
    LT: "<",
    LE: "<=",
    GT: ">",
    GE: ">=",
    EQ: "==",
    NE: "!=",
}

_CALL_OPS = {
    Min: "np.minimum",
    Max: "np.maximum",
    And: "np.logical_and",
    Or: "np.logical_or",
}

_UNARY_CALLS = {"exp", "tanh", "sqrt", "log", "abs"}


class UnsupportedForEmission(Exception):
    """The program contains a construct the source emitter cannot fix into code."""


class _Val:
    """One emitted expression: a code fragment plus its static classification.

    ``zone`` says when the fragment's inputs are available (``plan``: only
    structural data; ``run``: value arrays).  ``lanes`` says whether the
    fragment evaluates to a lane array or a scalar — known statically, unlike
    the vectorized executor which checks ``np.ndim`` at run time.  ``invalid``
    names the structural-zero mask accompanying the value, if any.
    """

    __slots__ = ("code", "zone", "lanes", "invalid")

    def __init__(self, code: str, zone: str, lanes: bool, invalid: Optional["_Val"] = None):
        self.code = code
        self.zone = zone
        self.lanes = lanes
        self.invalid = invalid


def _max_zone(*zones: str) -> str:
    return _RUN if _RUN in zones else _PLAN


class _Emitter:
    def __init__(self, func: PrimFunc):
        if func.stage != STAGE_LOOP:
            raise ValueError(f"emit_numpy expects a stage-III program, got {func.stage}")
        from ...runtime.vectorized import UnsupportedProgram, VectorizedExecutor

        try:
            # Reuse the vectorized executor's safety analysis: it proves each
            # nest free of read-after-write hazards and classifies every store
            # as a plain store or a reduction self-update.
            self._vec = VectorizedExecutor(func)
        except UnsupportedProgram as exc:
            raise UnsupportedForEmission(str(exc)) from exc
        self.func = func
        self.aux_names = {buf.name: buf for buf in func.aux_buffers}
        self.flat_sizes = {fb.name: fb.size for fb in func.flat_buffers}
        self.axes_by_name = {axis.name: axis for axis in func.axes}
        self.plan: List[str] = []
        self.run: List[str] = []
        self._counter = 0
        self._aux_used: List[str] = []
        self._val_used: List[str] = []
        self._axes_used: Set[str] = set()

    # -- infrastructure --------------------------------------------------------
    def _fresh(self, base: str) -> str:
        self._counter += 1
        return f"_{base}{self._counter}"

    def _line(self, zone: str, text: str) -> None:
        (self.plan if zone == _PLAN else self.run).append(text)

    def _bind_buffer(self, name: str) -> str:
        """Register a buffer local binding and return the local name."""
        if not name.isidentifier() or name.startswith("_"):
            raise UnsupportedForEmission(f"buffer name {name!r} is not emittable")
        if name in self.aux_names:
            if name not in self._aux_used:
                self._aux_used.append(name)
        elif name not in self._val_used:
            self._val_used.append(name)
        return name

    def _as_lanes(self, val: _Val, n_code: str) -> str:
        return val.code if val.lanes else f"np.full({n_code}, {val.code})"

    def _merge_invalid(self, *invalids: Optional[_Val]) -> Optional[_Val]:
        present = [inv for inv in invalids if inv is not None]
        if not present:
            return None
        if len(present) == 1:
            return present[0]
        zone = _max_zone(*(inv.zone for inv in present))
        name = self._fresh("inv")
        self._line(zone, f"{name} = " + " | ".join(inv.code for inv in present))
        return _Val(name, zone, True)

    # -- statement walk --------------------------------------------------------
    def _walk(self, stmt: Stmt, env: Dict[Var, _Val], n_code: str, mode: str) -> None:
        from ...runtime.executor import _contains_init

        if isinstance(stmt, SeqStmt):
            for child in stmt.stmts:
                self._walk(child, env, n_code, mode)
            return
        if isinstance(stmt, ForLoop):
            if mode in ("init", "init_only") and not _contains_init(stmt.body):
                return
            new_env, new_n = self._expand_loop(stmt, env, n_code)
            self._walk(stmt.body, new_env, new_n, mode)
            return
        if isinstance(stmt, Block):
            if mode in ("init", "init_only"):
                if stmt.init is not None:
                    self._line(_RUN, f"# init of block {stmt.name!r}")
                    self._walk(stmt.init, env, n_code, "compute")
                self._walk(stmt.body, env, n_code, "init_only")
            else:
                self._walk(stmt.body, env, n_code, mode)
            return
        if mode == "init":
            # Mirror the vectorized executor: the init pass does not descend
            # into leaf statements above the first block.
            return
        if mode == "init_only":
            if isinstance(stmt, IfThenElse):
                # The init pass visits both branches unmasked (inits are
                # idempotent constant stores), exactly like the interpreter.
                self._walk(stmt.then_case, env, n_code, mode)
                if stmt.else_case is not None:
                    self._walk(stmt.else_case, env, n_code, mode)
            return
        if isinstance(stmt, BufferStore):
            self._emit_store(stmt, env, n_code)
            return
        if isinstance(stmt, IfThenElse):
            self._emit_if(stmt, env, n_code, mode)
            return
        if isinstance(stmt, LetStmt):
            value = self._eval(stmt.value, env, n_code)
            if value.invalid is not None:
                self._line(
                    value.invalid.zone,
                    f"if {value.invalid.code}.any():\n"
                    f"    raise ValueError('structural zero inside a let binding')",
                )
            name = self._fresh(stmt.var.name)
            self._line(value.zone, f"{name} = {self._as_lanes(value, n_code)}")
            env[stmt.var] = _Val(name, value.zone, True)
            self._walk(stmt.body, env, n_code, mode)
            env.pop(stmt.var, None)
            return
        if isinstance(stmt, AssertStmt):
            self._walk(stmt.body, env, n_code, mode)
            return
        if isinstance(stmt, Evaluate):
            return
        raise UnsupportedForEmission(f"cannot emit statement of type {type(stmt).__name__}")

    def _expand_loop(
        self, loop: ForLoop, env: Dict[Var, _Val], n_code: str
    ) -> tuple[Dict[Var, _Val], str]:
        start = self._eval(loop.start, env, n_code)
        extent = self._eval(loop.extent, env, n_code)
        if _max_zone(start.zone, extent.zone) == _RUN:
            raise UnsupportedForEmission("loop bounds depend on value data")
        if start.invalid is not None or extent.invalid is not None:
            raise UnsupportedForEmission("structural zero inside loop bounds")

        new_env: Dict[Var, _Val] = {}
        loop_name = self._fresh(loop.loop_var.name)
        if not start.lanes and not extent.lanes:
            count = self._fresh("cnt")
            total = self._fresh("n")
            self._line(_PLAN, f"{count} = max(int({extent.code}), 0)")
            self._line(_PLAN, f"{total} = {n_code} * {count}")
            self._line(
                _PLAN,
                f"if {total} > MAX_LANES:\n"
                f"    raise ValueError('loop nest expands past MAX_LANES')",
            )
            for var, val in env.items():
                name = self._fresh(var.name)
                self._line(val.zone, f"{name} = np.repeat({val.code}, {count})")
                new_env[var] = _Val(name, val.zone, True)
            self._line(
                _PLAN,
                f"{loop_name} = np.tile(np.arange(int({start.code}), "
                f"int({start.code}) + {count}, dtype=np.int64), {n_code})",
            )
            new_env[loop.loop_var] = _Val(loop_name, _PLAN, True)
            return new_env, total

        starts = self._fresh("starts")
        counts = self._fresh("counts")
        total = self._fresh("n")
        parent = self._fresh("parent")
        local = self._fresh("local")
        self._line(
            _PLAN, f"{starts} = {self._as_lanes(start, n_code)}.astype(np.int64, copy=False)"
        )
        self._line(
            _PLAN,
            f"{counts} = np.maximum({self._as_lanes(extent, n_code)}"
            f".astype(np.int64, copy=False), 0)",
        )
        self._line(_PLAN, f"{total} = int({counts}.sum())")
        self._line(
            _PLAN,
            f"if {total} > MAX_LANES:\n"
            f"    raise ValueError('loop nest expands past MAX_LANES')",
        )
        self._line(_PLAN, f"{parent} = np.repeat(np.arange({n_code}, dtype=np.int64), {counts})")
        self._line(_PLAN, f"{local} = ragged_arange({counts})")
        for var, val in env.items():
            name = self._fresh(var.name)
            self._line(val.zone, f"{name} = {val.code}[{parent}]")
            new_env[var] = _Val(name, val.zone, True)
        self._line(_PLAN, f"{loop_name} = {starts}[{parent}] + {local}")
        new_env[loop.loop_var] = _Val(loop_name, _PLAN, True)
        return new_env, total

    def _emit_if(self, stmt: IfThenElse, env: Dict[Var, _Val], n_code: str, mode: str) -> None:
        cond = self._eval(stmt.condition, env, n_code)
        if cond.zone == _RUN:
            raise UnsupportedForEmission("branch condition depends on value data")
        mask = self._fresh("m")
        if cond.lanes:
            self._line(_PLAN, f"{mask} = np.asarray({cond.code}, dtype=bool)")
        else:
            self._line(_PLAN, f"{mask} = np.full({n_code}, bool({cond.code}))")
        if cond.invalid is not None:
            self._line(_PLAN, f"{mask} = {mask} & ~{cond.invalid.code}")
        then_n = self._fresh("n")
        self._line(_PLAN, f"{then_n} = int({mask}.sum())")
        self._walk(stmt.then_case, self._mask_env(env, mask), then_n, mode)
        if stmt.else_case is not None:
            inverse = self._fresh("m")
            else_n = self._fresh("n")
            self._line(_PLAN, f"{inverse} = ~{mask}")
            self._line(_PLAN, f"{else_n} = {n_code} - {then_n}")
            self._walk(stmt.else_case, self._mask_env(env, inverse), else_n, mode)

    def _mask_env(self, env: Dict[Var, _Val], mask: str) -> Dict[Var, _Val]:
        masked: Dict[Var, _Val] = {}
        for var, val in env.items():
            name = self._fresh(var.name)
            self._line(val.zone, f"{name} = {val.code}[{mask}]")
            masked[var] = _Val(name, val.zone, True)
        return masked

    def _emit_store(self, store: BufferStore, env: Dict[Var, _Val], n_code: str) -> None:
        if len(store.indices) != 1:
            raise UnsupportedForEmission("stage-III stores must use a single flat index")
        name = store.buffer.name
        if name in self.aux_names:
            raise UnsupportedForEmission(f"store to auxiliary buffer {name!r}")
        size = self.flat_sizes.get(name)
        if size is None:
            raise UnsupportedForEmission(f"store to unknown flat buffer {name!r}")
        array = self._bind_buffer(name)
        residual = self._vec._reduction_residual.get(id(store))
        self._line(_RUN, f"# {store!r}")

        index = self._eval(store.indices[0], env, n_code)
        value = self._eval(residual[1] if residual is not None else store.value, env, n_code)
        for inv in (index.invalid, value.invalid):
            if inv is not None and inv.zone == _RUN:
                raise UnsupportedForEmission("value-dependent structural-zero mask")

        # A name may only be assigned in one zone (a plan temp reassigned
        # inside run() would shadow the closure variable), so the keep-filter
        # binds fresh names instead of updating in place.
        idx = self._fresh("ix")
        drop = self._fresh("drop")
        bad = self._fresh("bad")
        keep = self._fresh("keep")
        self._line(
            index.zone,
            f"{idx} = {self._as_lanes(index, n_code)}.astype(np.int64, copy=False)",
        )
        self._line(index.zone, f"{drop} = ({idx} < 0) | ({idx} >= {size})")
        self._line(index.zone, f"{bad} = {drop} if {drop}.any() else None")
        for inv in (index.invalid, value.invalid):
            if inv is not None:
                self._line(
                    index.zone, f"{bad} = {inv.code} if {bad} is None else ({bad} | {inv.code})"
                )
        kept_idx = self._fresh("ix")
        self._line(
            index.zone,
            f"if {bad} is None:\n"
            f"    {keep} = None\n"
            f"    {kept_idx} = {idx}\n"
            f"else:\n"
            f"    {keep} = ~{bad}\n"
            f"    {kept_idx} = {idx}[{keep}]",
        )
        vals = self._fresh("v")
        kept_vals = self._fresh("v")
        vals_zone = _max_zone(value.zone, index.zone)
        self._line(value.zone, f"{vals} = {self._as_lanes(value, n_code)}")
        self._line(
            vals_zone, f"{kept_vals} = {vals} if {keep} is None else {vals}[{keep}]"
        )
        if residual is not None:
            ufunc = "np.add.at" if residual[0] == "add" else "np.multiply.at"
            self._line(_RUN, f"{ufunc}({array}, {kept_idx}, {kept_vals})")
        else:
            target = kept_idx
            if index.zone == _PLAN:
                # An identity scatter (dense element-wise nests) collapses to
                # a basic slice at plan time: the per-call store becomes a
                # contiguous block write instead of a fancy-index scatter.
                # Identity indices have no duplicates, so plain assignment
                # through the slice is element-for-element identical.
                target = self._fresh("sl")
                self._line(
                    _PLAN,
                    f"{target} = slice(0, {kept_idx}.size) if {keep} is None "
                    f"and np.array_equal({kept_idx}, np.arange({kept_idx}.size)) "
                    f"else {kept_idx}",
                )
            self._line(_RUN, f"{array}[{target}] = {kept_vals}")

    # -- expression emission ---------------------------------------------------
    def _eval(self, expr: Expr, env: Dict[Var, _Val], n_code: str) -> _Val:
        if isinstance(expr, IntImm):
            return _Val(str(int(expr.value)), _PLAN, False)
        if isinstance(expr, FloatImm):
            return _Val(repr(float(expr.value)), _PLAN, False)
        if isinstance(expr, StringImm):
            return _Val(repr(expr.value), _PLAN, False)
        if isinstance(expr, Var):
            val = env.get(expr)
            if val is None:
                raise UnsupportedForEmission(f"unbound variable {expr.name!r}")
            return val
        if isinstance(expr, BufferLoad):
            return self._eval_load(expr, env, n_code)
        if isinstance(expr, BinaryOp):
            a = self._eval(expr.a, env, n_code)
            b = self._eval(expr.b, env, n_code)
            zone = _max_zone(a.zone, b.zone)
            lanes = a.lanes or b.lanes
            invalid = self._merge_invalid(a.invalid, b.invalid)
            infix = _INFIX_OPS.get(type(expr))
            if infix is not None:
                return _Val(f"({a.code} {infix} {b.code})", zone, lanes, invalid)
            call = _CALL_OPS.get(type(expr))
            if call is not None:
                return _Val(f"{call}({a.code}, {b.code})", zone, lanes, invalid)
            if isinstance(expr, Div):
                # The vectorized executor evaluates divisions under
                # ``np.errstate`` to silence 0/0 warnings; mirror that.
                name = self._fresh("q")
                self._line(
                    zone,
                    "with np.errstate(divide='ignore', invalid='ignore'):\n"
                    f"    {name} = {a.code} / {b.code}",
                )
                return _Val(name, zone, lanes, invalid)
            raise UnsupportedForEmission(f"unsupported binary op {type(expr).__name__}")
        if isinstance(expr, Not):
            a = self._eval(expr.a, env, n_code)
            return _Val(f"np.logical_not({a.code})", a.zone, a.lanes, a.invalid)
        if isinstance(expr, Select):
            return self._eval_select(expr, env, n_code)
        if isinstance(expr, Cast):
            value = self._eval(expr.value, env, n_code)
            if expr.dtype.startswith("int"):
                code = (
                    f"np.asarray({value.code}).astype(np.int64)"
                    if value.lanes
                    else f"int({value.code})"
                )
            elif expr.dtype.startswith("float"):
                code = (
                    f"np.asarray({value.code}).astype(np.float64)"
                    if value.lanes
                    else f"float({value.code})"
                )
            else:
                code = value.code
            return _Val(code, value.zone, value.lanes, value.invalid)
        if isinstance(expr, Call):
            return self._eval_call(expr, env, n_code)
        raise UnsupportedForEmission(f"cannot emit expression of type {type(expr).__name__}")

    def _eval_select(self, expr: Select, env: Dict[Var, _Val], n_code: str) -> _Val:
        cond = self._eval(expr.condition, env, n_code)
        true = self._eval(expr.true_value, env, n_code)
        false = self._eval(expr.false_value, env, n_code)
        zone = _max_zone(cond.zone, true.zone, false.zone)
        lanes = cond.lanes or true.lanes or false.lanes
        cond_name = self._fresh("c")
        self._line(cond.zone, f"{cond_name} = {cond.code}")
        code = f"np.where({cond_name}, {true.code}, {false.code})"
        branch_invalid: Optional[_Val] = None
        if true.invalid is not None or false.invalid is not None:
            # Only the invalidity of the *chosen* branch counts, mirroring the
            # interpreter which never evaluates the unchosen branch.
            ti = true.invalid.code if true.invalid is not None else "False"
            fi = false.invalid.code if false.invalid is not None else "False"
            inv_zone = _max_zone(
                cond.zone,
                *(inv.zone for inv in (true.invalid, false.invalid) if inv is not None),
            )
            name = self._fresh("inv")
            self._line(
                inv_zone,
                f"{name} = np.where(np.asarray({cond_name}, dtype=bool), {ti}, {fi})",
            )
            branch_invalid = _Val(name, inv_zone, True)
        return _Val(code, zone, lanes, self._merge_invalid(cond.invalid, branch_invalid))

    def _eval_load(self, expr: BufferLoad, env: Dict[Var, _Val], n_code: str) -> _Val:
        if len(expr.indices) != 1:
            raise UnsupportedForEmission("stage-III loads must use a single flat index")
        name = expr.buffer.name
        size = self.flat_sizes.get(name)
        if size is None:
            raise UnsupportedForEmission(f"load from unknown flat buffer {name!r}")
        array = self._bind_buffer(name)
        buffer_zone = _PLAN if name in self.aux_names else _RUN
        index = self._eval(expr.indices[0], env, n_code)
        zone = _max_zone(index.zone, buffer_zone)

        if not index.lanes:
            pos = self._fresh("i")
            self._line(index.zone, f"{pos} = int({index.code})")
            guard = f"0 <= {pos} < {size}"
            if index.invalid is not None:
                guard = f"not bool({index.invalid.code}) and {guard}"
            value = self._fresh("v")
            self._line(
                zone, f"{value} = {array}[{pos}] if ({guard}) else {array}.dtype.type(0)"
            )
            return _Val(value, zone, False)

        idx = self._fresh("ix")
        bad = self._fresh("bad")
        anybad = self._fresh("anybad")
        safe = self._fresh("safe")
        self._line(index.zone, f"{idx} = {index.code}.astype(np.int64, copy=False)")
        bad_expr = f"({idx} < 0) | ({idx} >= {size})"
        if index.invalid is not None:
            bad_expr = f"({bad_expr}) | {index.invalid.code}"
        self._line(index.zone, f"{bad} = {bad_expr}")
        self._line(index.zone, f"{anybad} = bool({bad}.any())")
        self._line(index.zone, f"{safe} = np.where({bad}, 0, {idx}) if {anybad} else {idx}")
        gather = safe
        if index.zone == _PLAN:
            # An identity gather (dense element-wise nests) collapses to a
            # basic slice at plan time: the per-call load becomes a zero-copy
            # view instead of a fancy-index copy.  Only the unguarded path is
            # reached when the slice applies (``anybad`` is part of the
            # condition), and every consumer either reads the view or copies
            # out of it before any store touches the source buffer (the
            # vectorized safety analysis proves nests hazard-free).
            gather = self._fresh("sl")
            self._line(
                _PLAN,
                f"{gather} = slice(0, {safe}.size) if not {anybad} "
                f"and np.array_equal({safe}, np.arange({safe}.size)) else {safe}",
            )
        value = self._fresh("v")
        self._line(
            zone,
            f"if {anybad}:\n"
            f"    {value} = np.where({bad}, {array}.dtype.type(0), {array}[{gather}])\n"
            f"else:\n"
            f"    {value} = {array}[{gather}]",
        )
        # A load consumes the structural zero (it evaluates to 0), so the
        # invalid mask does not propagate past it.
        return _Val(value, zone, True)

    def _eval_call(self, call: Call, env: Dict[Var, _Val], n_code: str) -> _Val:
        if call.func == BINARY_SEARCH:
            if not isinstance(call.args[0], StringImm):
                raise UnsupportedForEmission("dynamic axis name in sparse_coord_to_pos")
            axis_name = call.args[0].value
            if axis_name not in self.axes_by_name:
                raise UnsupportedForEmission(f"unknown axis {axis_name!r}")
            parent = self._eval(call.args[1], env, n_code)
            coord = self._eval(call.args[2], env, n_code)
            if _max_zone(parent.zone, coord.zone) == _RUN:
                raise UnsupportedForEmission("coordinate search depends on value data")
            self._axes_used.add(axis_name)
            par = self._fresh("par")
            crd = self._fresh("crd")
            pos = self._fresh("pos")
            miss = self._fresh("inv")
            self._line(
                _PLAN, f"{par} = {self._as_lanes(parent, n_code)}.astype(np.int64, copy=False)"
            )
            self._line(
                _PLAN, f"{crd} = {self._as_lanes(coord, n_code)}.astype(np.int64, copy=False)"
            )
            self._line(
                _PLAN, f"{pos} = coords_to_positions(axes[{axis_name!r}], {par}, {crd})"
            )
            self._line(_PLAN, f"{miss} = {pos} < 0")
            invalid = self._merge_invalid(parent.invalid, coord.invalid, _Val(miss, _PLAN, True))
            return _Val(pos, _PLAN, True, invalid)
        if call.func == ROW_UPPER_BOUND:
            if not isinstance(call.args[0], StringImm):
                raise UnsupportedForEmission("dynamic axis name in sparse_row_of_position")
            axis_name = call.args[0].value
            axis = self.axes_by_name.get(axis_name)
            if axis is None or getattr(axis, "indptr", None) is None:
                raise UnsupportedForEmission(f"axis {axis_name!r} has no indptr for row search")
            position = self._eval(call.args[1], env, n_code)
            if position.zone == _RUN:
                raise UnsupportedForEmission("row search depends on value data")
            self._axes_used.add(axis_name)
            rows = self._fresh("row")
            self._line(
                _PLAN,
                f"{rows} = (np.searchsorted(axes[{axis_name!r}].indptr, "
                f"{self._as_lanes(position, n_code)}, side='right') - 1)"
                f".astype(np.int64, copy=False)",
            )
            return _Val(rows, _PLAN, True, position.invalid)
        if call.func in _UNARY_CALLS:
            value = self._eval(call.args[0], env, n_code)
            name = self._fresh("u")
            self._line(
                value.zone,
                "with np.errstate(divide='ignore', invalid='ignore'):\n"
                f"    {name} = np.{call.func}({value.code})",
            )
            return _Val(name, value.zone, value.lanes, value.invalid)
        raise UnsupportedForEmission(f"unknown intrinsic {call.func!r}")

    # -- assembly --------------------------------------------------------------
    def emit(self) -> str:
        body = self.func.body
        self.run.append("# ---- pass 1: reduction initialisation ----")
        self._walk(body, {}, "1", "init")
        self.run.append("# ---- pass 2: compute ----")
        self._walk(body, {}, "1", "compute")
        return self._render()

    def _render(self) -> str:
        plan_blocks, aliases = _cse_plan(self.plan)
        plan_text = "\n".join(plan_blocks)
        run_blocks = _free_dead_temps(
            [_apply_aliases(block, aliases) for block in self.run]
        )
        run_text = "\n".join(run_blocks)
        helper_lines = ["np = helpers['np']"]
        if "ragged_arange(" in plan_text:
            helper_lines.append("ragged_arange = helpers['ragged_arange']")
        if "coords_to_positions(" in plan_text:
            helper_lines.append("coords_to_positions = helpers['coords_to_positions']")
        for name in self._aux_used:
            helper_lines.append(f"{name} = aux[{name!r}]")

        lines: List[str] = [
            f'"""Emitted NumPy kernel for {self.func.name!r} '
            "(stage-IV source backend).",
            "",
            f"Generated by repro.core.codegen.emit_numpy v{EMITTER_VERSION}; do not edit.",
            "The make_kernel body is the plan: lane expansion and gather/scatter",
            "indices fixed once from the structural data.  run() is the per-call",
            "gather / compute / scatter body over the value arrays.",
            '"""',
            "",
            f"MAX_LANES = {MAX_LANES}",
            "",
            "",
            "def make_kernel(axes, aux, helpers):",
        ]
        for text in helper_lines:
            lines.extend(_indent(text, 1))
        lines.append("    # ---- plan: computed once from structural data ----")
        for text in plan_blocks:
            lines.extend(_indent(text, 1))
        lines.append("")
        lines.append("    def run(arrays):")
        for name in self._val_used:
            lines.append(f"        {name} = arrays[{name!r}]")
        for text in run_blocks:
            lines.extend(_indent(text, 2))
        lines.append("        return arrays")
        lines.append("")
        lines.append("    return run")
        return "\n".join(lines) + "\n"


_TEMP_NAME = re.compile(r"\b_[a-zA-Z]\w*\b")
_TEMP_ASSIGN = re.compile(r"^\s*(_[a-zA-Z]\w*) = ", re.MULTILINE)


def _apply_aliases(text: str, aliases: Dict[str, str]) -> str:
    if not aliases:
        return text
    return _TEMP_NAME.sub(lambda m: aliases.get(m.group(0), m.group(0)), text)


def _cse_plan(blocks: List[str]) -> tuple[List[str], Dict[str, str]]:
    """Value-number the plan: drop repeated computations, alias their names.

    Plan code is straight-line and reads only structural (auxiliary) data,
    which nothing ever stores to, so two plan blocks whose text is identical
    after alias substitution compute identical arrays — the second is dropped
    and its names alias the first.  This collapses the init-pass/compute-pass
    duplication inside every kernel and, in merged (fused) programs, shares
    one set of lane/gather index arrays between structurally identical nests
    (e.g. the per-relation GEMMs of an RGCN layer) exactly like the kernel
    cache shares them between identical standalone kernels.
    """
    # Names assigned by more than one block (e.g. the structural-zero mask
    # accumulation) are mutable: they may neither be aliased nor take part in
    # a dedup key, since text identity no longer implies value identity.
    counts: Dict[str, int] = {}
    for block in blocks:
        for name in dict.fromkeys(_TEMP_ASSIGN.findall(block)):
            counts[name] = counts.get(name, 0) + 1
    mutable = {name for name, c in counts.items() if c > 1}

    aliases: Dict[str, str] = {}
    seen: Dict[str, List[str]] = {}
    out: List[str] = []
    for block in blocks:
        text = _apply_aliases(block, aliases)
        targets = list(dict.fromkeys(_TEMP_ASSIGN.findall(text)))
        if not targets:
            out.append(text)
            continue
        names_in_block = set(_TEMP_NAME.findall(text))
        if names_in_block & mutable:
            out.append(text)
            continue
        placeholder = {name: f"\0{i}\0" for i, name in enumerate(targets)}
        key = _TEMP_NAME.sub(lambda m: placeholder.get(m.group(0), m.group(0)), text)
        prior = seen.get(key)
        if prior is None:
            seen[key] = targets
            out.append(text)
        else:
            for name, canonical in zip(targets, prior):
                if name != canonical:
                    aliases[name] = canonical
    return out, aliases


def _free_dead_temps(blocks: List[str]) -> List[str]:
    """Insert ``del`` statements after the last use of each run-zone temporary.

    A merged (fused) program keeps every nest's gather/compute temporaries
    alive as frame locals until ``run()`` returns, which defeats the
    allocator's buffer reuse between nests — node-at-a-time execution gets
    that reuse for free when each kernel's frame exits.  Freeing each
    temporary right after its last use restores the reuse, so a fused
    program's working set matches the largest single nest instead of the sum
    of all nests.  Only names *assigned inside the run body* are freed;
    plan-zone names are closure variables and cannot (and must not) be
    deleted.
    """
    assigned: Dict[str, int] = {}
    last_use: Dict[str, int] = {}
    for i, block in enumerate(blocks):
        for match in _TEMP_ASSIGN.finditer(block):
            assigned.setdefault(match.group(1), i)
        for match in _TEMP_NAME.finditer(block):
            last_use[match.group(0)] = i
    out: List[str] = []
    for i, block in enumerate(blocks):
        out.append(block)
        if i == len(blocks) - 1:
            continue
        dead = sorted(
            name for name, last in last_use.items() if last == i and name in assigned
        )
        if dead:
            out.append("del " + ", ".join(dead))
    return out


def _indent(text: str, depth: int) -> List[str]:
    pad = "    " * depth
    return [pad + line if line else line for line in text.split("\n")]


def emit_numpy_source(func: PrimFunc) -> str:
    """Emit the stage-IV NumPy module source for a stage-III program.

    Raises :class:`UnsupportedForEmission` when the program falls outside the
    emitter's fragment; callers fall back to the vectorized tier.
    """
    return _Emitter(func).emit()


def aux_arrays(func: PrimFunc) -> Dict[str, np.ndarray]:
    """The structural (auxiliary) flat arrays of a lowered program.

    Prepared exactly like :func:`repro.runtime.executor.prepare_arrays` does
    for the same buffers, so plan-time loads observe the bytes the vectorized
    executor would.
    """
    dtypes = {fb.name: fb.dtype for fb in func.flat_buffers}
    sizes = {fb.name: fb.size for fb in func.flat_buffers}
    out: Dict[str, np.ndarray] = {}
    for buf in func.aux_buffers:
        dtype = _np_dtype(dtypes.get(buf.name, buf.dtype))
        if buf.data is not None:
            out[buf.name] = np.asarray(buf.data, dtype=dtype).reshape(-1).copy()
        else:
            out[buf.name] = np.zeros(sizes.get(buf.name, buf.flat_size()), dtype=dtype)
    return out


def compile_emitted(source: str, func: PrimFunc) -> Any:
    """Compile emitted source and execute its plan; return the run closure.

    Any exception (lane overflow in the plan, a stale hand-edited source)
    propagates to the caller, which treats the emitted tier as unavailable
    for this kernel and falls back.
    """
    from ...runtime.vectorized import coords_to_positions

    namespace: Dict[str, Any] = {}
    code = compile(source, f"<emitted:{func.name}>", "exec")
    exec(code, namespace)
    make_kernel = namespace["make_kernel"]
    helpers = {
        "np": np,
        "ragged_arange": ragged_arange,
        "coords_to_positions": coords_to_positions,
    }
    axes = {axis.name: axis for axis in func.axes}
    return make_kernel(axes, aux_arrays(func), helpers)
