"""Horizontal fusion of generated kernels.

Composable formats make SparseTIR emit one CUDA kernel per sub-format, which
adds kernel-launch overhead.  The paper inserts a horizontal-fusion pass in
the backend (Section 3.5) so that the independent kernels are launched as one
grid.  Here kernels correspond to the top-level loop nests of the lowered
program; horizontal fusion groups them into a single launch group and the
performance model charges a single launch latency for the group.
"""

from __future__ import annotations

from typing import List

from ..program import PrimFunc
from ..stmt import SeqStmt, Stmt


def launch_groups(func: PrimFunc) -> List[Stmt]:
    """Return the top-level statements of *func*, one per kernel launch."""
    body = func.body
    if isinstance(body, SeqStmt):
        return list(body.stmts)
    return [body]


def horizontal_fuse(func: PrimFunc) -> PrimFunc:
    """Mark the program so all top-level kernels are launched as one grid."""
    fused = func.with_body(func.body)
    fused.attrs["horizontal_fusion"] = True
    return fused


def is_horizontally_fused(func: PrimFunc) -> bool:
    return bool(func.attrs.get("horizontal_fusion", False))


def launch_count(func: PrimFunc) -> int:
    """Number of kernel launches required to run the program."""
    if is_horizontally_fused(func):
        return 1
    return len(launch_groups(func))
