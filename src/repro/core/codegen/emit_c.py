"""Native stage-IV backend: emit a standalone C module for a stage-III program.

The emitted NumPy tier (:mod:`repro.core.codegen.emit_numpy`) already splits a
lowered program into a structural *plan* (lane expansion, gather/scatter index
tables, structural-zero masks — computed once per process) and a per-call
*run* body.  That run body still pays one NumPy dispatch per gather / compute
/ ``ufunc.at`` line, which dominates on small-nnz graph workloads.  This
module reuses the exact same plan machinery and compiles the run body down to
plain C loops over typed buffers:

* :func:`emit_c_source` walks the lowered program once and returns two
  sources: a **C module** whose ``run(bufs, tabs, ipar, fpar)`` function is
  the per-call body (one flat loop per store, gathering through plan-built
  index tables), and a **glue module** defining
  ``make_kernel(axes, aux, helpers, lib)`` whose body is the plan — the same
  Python plan lines the NumPy emitter would produce, plus the marshalling of
  index tables and scalar parameters into the C call.
* The C source deliberately contains **no sizes**: lane counts, gather
  indices and bounds all travel through the plan-built tables and the
  ``ipar`` scalar block.  Every structure of the same program family shares
  one C source, so one compilation (memoised by source hash) serves a whole
  tuning sweep or test battery.
* :func:`load_native` compiles the C source with the system compiler (cffi in
  ABI mode — no ``Python.h`` required), dlopens the shared object, executes
  the glue plan and returns the ``run(arrays)`` closure used by
  :meth:`~repro.core.codegen.build.Kernel.run`'s native tier.

Bit-exactness is the contract: every C operation mirrors the NumPy operation
of the emitted tier (same lane order, same NEP-50 promotion, same
structural-zero masking; compiled with ``-ffp-contract=off`` so no FMA
contraction changes results).  Constructs whose C semantics could diverge —
``exp``/``tanh``/``log`` (NumPy's SIMD routines are not bit-identical to
libm), floor division, value-dependent masks, boolean arithmetic — raise
:class:`UnsupportedForC` and the kernel falls back to the emitted NumPy tier,
so the native tier is never a correctness risk.
"""

from __future__ import annotations

import hashlib
import math
import os
import platform as _platform
import shutil
import subprocess
import sys
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..buffers import _np_dtype
from ..expr import (
    Add,
    And,
    BinaryOp,
    BufferLoad,
    Call,
    Cast,
    Div,
    EQ,
    Expr,
    FloatImm,
    GE,
    GT,
    IntImm,
    LE,
    LT,
    Max,
    Min,
    Mul,
    NE,
    Not,
    Or,
    Select,
    StringImm,
    Sub,
    Var,
)
from ..nputils import MAX_LANES, ragged_arange
from ..program import PrimFunc
from ..stmt import LetStmt, Stmt
from .emit_numpy import (
    _PLAN,
    _RUN,
    UnsupportedForEmission,
    _apply_aliases,
    _cse_plan,
    _Emitter,
    _indent,
    aux_arrays,
)

#: Bumped whenever the native-source contract (C layout, glue protocol, or
#: compile flags) changes; stale on-disk ``.so`` artifacts from an older
#: version load as cache misses and are rebuilt, never imported.
NATIVE_VERSION = 1

#: Environment variable disabling the native tier (``0`` / ``off`` / ``false``).
NATIVE_ENV_VAR = "REPRO_NATIVE"

_NATIVE_DISABLED_VALUES = {"0", "off", "false", "disabled", "none", "no"}

#: Compile flags.  ``-ffp-contract=off`` is load-bearing: without it GCC fuses
#: ``a*b + c`` into an FMA whose single rounding diverges from NumPy's two.
#: ``-fwrapv`` makes signed int64 overflow wrap exactly like NumPy's.
CFLAGS = (
    "-O2",
    "-fPIC",
    "-shared",
    "-fno-strict-aliasing",
    "-ffp-contract=off",
    "-fwrapv",
)

_COMPILE_TIMEOUT_S = 180.0


class UnsupportedForC(UnsupportedForEmission):
    """The program contains a construct the C emitter cannot fix into code.

    Subclasses :class:`UnsupportedForEmission`, so every caller that already
    treats the emitted tier as optional handles the native tier the same way.
    """


class NativeBuildError(RuntimeError):
    """Compiling or loading the native artifact failed (caller falls back)."""


# -- ctype lattice -------------------------------------------------------------
#
# C expressions carry a static type mirroring NumPy's NEP-50 promotion:
# ``f64``/``f32``/``i64`` are strong dtypes (arrays and NumPy scalars),
# ``u8`` is boolean, and ``ilit``/``flit`` are *weak* Python scalars whose
# promotion defers to the other operand — exactly the distinction NumPy makes
# between ``np.int64(2)`` and the literal ``2``.

_CDECL = {
    "f64": "double",
    "f32": "float",
    "i64": "int64_t",
    "i32": "int32_t",
    "u8": "uint8_t",
}
_CZERO = {"f64": "0.0", "f32": "0.0f", "i64": "(int64_t)0", "i32": "(int32_t)0"}
_BUFFER_CTYPES = {"float64": "f64", "float32": "f32", "int64": "i64", "int32": "i32"}

_INFIX_C = {Add: "+", Sub: "-", Mul: "*"}
_CMP_C = {LT: "<", LE: "<=", GT: ">", GE: ">=", EQ: "==", NE: "!="}

#: Weak Python scalars become *strong* NumPy arrays wherever the NumPy tier
#: materialises them with ``np.full`` (let bindings, whole-scalar store
#: values): ``np.full(n, 0.5)`` is float64, not a weak literal.  Promotion
#: against the strengthened type mirrors that tier bit-for-bit.
_STRENGTHEN = {"flit": "f64", "ilit": "i64"}


def _promote(a: str, b: str) -> str:
    """NEP-50 result type of a binary operation over the ctype lattice."""
    if a == b:
        return a
    pair = {a, b}
    if "u8" in pair:
        raise UnsupportedForC("boolean lanes in arithmetic")
    if pair == {"ilit", "flit"}:
        return "flit"
    if "f64" in pair:
        return "f64"
    if pair in ({"f32", "i64"}, {"f32", "i32"}):
        # int32/int64 do not fit float32; NumPy widens the pair to float64.
        return "f64"
    if "f32" in pair:
        return "f32"  # f32 with a weak scalar stays f32
    if pair == {"i32", "i64"}:
        return "i64"
    if pair == {"i32", "flit"}:
        return "f64"
    if "i32" in pair:
        return "i32"  # i32 with a weak int stays i32
    if "i64" in pair:
        return "f64" if "flit" in pair else "i64"
    raise UnsupportedForC(f"cannot promote {a!r} with {b!r}")


class _CVal:
    """One emitted C expression: code, static ctype, pending invalid masks.

    ``invalids`` lists plan-zone structural-zero masks not yet consumed by a
    load; the enclosing store folds them into its drop mask, mirroring the
    NumPy emitter's keep-filter.
    """

    __slots__ = ("code", "ctype", "invalids")

    def __init__(self, code: str, ctype: str, invalids: Optional[List[Any]] = None):
        self.code = code
        self.ctype = ctype
        self.invalids = invalids or []


#: C keywords that a buffer name must not collide with (buffer names become
#: C identifiers verbatim; Python's identifier check does not cover these).
_C_RESERVED = {
    "auto", "break", "case", "char", "const", "continue", "default", "do",
    "double", "else", "enum", "extern", "float", "for", "goto", "if",
    "inline", "int", "long", "register", "restrict", "return", "short",
    "signed", "sizeof", "static", "struct", "switch", "typedef", "union",
    "unsigned", "void", "volatile", "while", "run", "bufs", "tabs", "ipar",
    "fpar",
}

_C_HELPERS = """\
static inline double _min_f64(double a, double b) {
    return (a != a) ? a : ((b != b) ? b : ((a < b) ? a : b));
}
static inline double _max_f64(double a, double b) {
    return (a != a) ? a : ((b != b) ? b : ((a > b) ? a : b));
}
static inline float _min_f32(float a, float b) {
    return (a != a) ? a : ((b != b) ? b : ((a < b) ? a : b));
}
static inline float _max_f32(float a, float b) {
    return (a != a) ? a : ((b != b) ? b : ((a > b) ? a : b));
}
static inline int64_t _min_i64(int64_t a, int64_t b) { return (a < b) ? a : b; }
static inline int64_t _max_i64(int64_t a, int64_t b) { return (a > b) ? a : b; }
static inline int32_t _min_i32(int32_t a, int32_t b) { return (a < b) ? a : b; }
static inline int32_t _max_i32(int32_t a, int32_t b) { return (a > b) ? a : b; }\
"""


class _CEmitter(_Emitter):
    """Walks the lowered program emitting the plan in Python and the run in C.

    The plan zone is inherited wholesale from the NumPy emitter — every plan
    line this class adds (gather/store index tables with structural drops
    folded to ``-1``) is plain NumPy over structural data.  Run-zone work is
    routed through :meth:`_ceval`, which generates C expressions and
    registers the plan values they consume as typed tables (``tabs``) and
    scalar parameters (``ipar``/``fpar``).
    """

    def __init__(self, func: PrimFunc):
        super().__init__(func)
        self.crun: List[str] = []
        #: (plan expression, ctype) -> table slot, in registration order.
        self._ctabs: List[Tuple[str, str]] = []
        self._ctab_index: Dict[Tuple[str, str], int] = {}
        self._cipars: List[str] = []
        self._cipar_index: Dict[str, int] = {}
        self._cfpars: List[str] = []
        self._cfpar_index: Dict[str, int] = {}
        self._var_ctypes: Dict[Var, str] = {}
        self._stored: set[str] = set()

    # -- registration ----------------------------------------------------------
    def _bind_buffer(self, name: str) -> str:
        if name in _C_RESERVED:
            raise UnsupportedForC(f"buffer name {name!r} collides with a C keyword")
        return super()._bind_buffer(name)

    def _buffer_ctype(self, name: str) -> str:
        dtype = next(
            (str(_np_dtype(fb.dtype)) for fb in self.func.flat_buffers if fb.name == name),
            None,
        )
        ct = _BUFFER_CTYPES.get(dtype or "")
        if ct is None:
            raise UnsupportedForC(f"buffer {name!r} has unsupported dtype {dtype!r}")
        return ct

    def _tab(self, plan_code: str, ct: str) -> str:
        key = (plan_code, ct)
        slot = self._ctab_index.get(key)
        if slot is None:
            slot = len(self._ctabs)
            self._ctabs.append(key)
            self._ctab_index[key] = slot
        return f"_t{slot}"

    def _ipar(self, plan_code: str) -> str:
        slot = self._cipar_index.get(plan_code)
        if slot is None:
            slot = len(self._cipars)
            self._cipars.append(plan_code)
            self._cipar_index[plan_code] = slot
        return f"_ip{slot}"

    def _fpar(self, plan_code: str) -> str:
        slot = self._cfpar_index.get(plan_code)
        if slot is None:
            slot = len(self._cfpars)
            self._cfpars.append(plan_code)
            self._cfpar_index[plan_code] = slot
        return f"_fp{slot}"

    # -- zone probe ------------------------------------------------------------
    def _expr_zone(self, expr: Expr) -> str:
        """``_RUN`` iff the expression reads any value (non-auxiliary) buffer."""
        if isinstance(expr, BufferLoad):
            if expr.buffer.name not in self.aux_names:
                return _RUN
            return _PLAN if all(self._expr_zone(i) == _PLAN for i in expr.indices) else _RUN
        if isinstance(expr, BinaryOp):
            return _PLAN if (
                self._expr_zone(expr.a) == _PLAN and self._expr_zone(expr.b) == _PLAN
            ) else _RUN
        if isinstance(expr, Not):
            return self._expr_zone(expr.a)
        if isinstance(expr, Select):
            parts = (expr.condition, expr.true_value, expr.false_value)
            return _PLAN if all(self._expr_zone(p) == _PLAN for p in parts) else _RUN
        if isinstance(expr, Cast):
            return self._expr_zone(expr.value)
        if isinstance(expr, Call):
            return _PLAN if all(self._expr_zone(a) == _PLAN for a in expr.args) else _RUN
        return _PLAN  # literals and variables (loop/let vars are plan-bound)

    # -- static dtype inference ------------------------------------------------
    def _infer_ctype(self, expr: Expr) -> str:
        """The NEP-50 ctype a plan-zone expression evaluates to."""
        if isinstance(expr, IntImm):
            return "ilit"
        if isinstance(expr, FloatImm):
            return "flit"
        if isinstance(expr, Var):
            return self._var_ctypes.get(expr, "i64")  # loop variables are int64
        if isinstance(expr, BufferLoad):
            return self._buffer_ctype(expr.buffer.name)
        if isinstance(expr, BinaryOp):
            kind = type(expr)
            if kind in _CMP_C or kind in (And, Or):
                return "u8"
            a = self._infer_ctype(expr.a)
            b = self._infer_ctype(expr.b)
            ct = _promote(a, b)
            if kind is Div and ct in ("i64", "ilit"):
                return "f64"  # NumPy true-divide of integers yields float64
            return ct
        if isinstance(expr, Not):
            return "u8"
        if isinstance(expr, Select):
            return _promote(
                self._infer_ctype(expr.true_value), self._infer_ctype(expr.false_value)
            )
        if isinstance(expr, Cast):
            if expr.dtype.startswith("int"):
                inner = self._infer_ctype(expr.value)
                return "ilit" if inner == "ilit" else "i64"
            if expr.dtype.startswith("float"):
                inner = self._infer_ctype(expr.value)
                return "flit" if inner in ("ilit", "flit") else "f64"
            return self._infer_ctype(expr.value)
        if isinstance(expr, Call):
            if expr.func in ("exp", "tanh", "sqrt", "log"):
                inner = self._infer_ctype(expr.args[0])
                return inner if inner in ("f32", "f64", "flit") else "f64"
            if expr.func == "abs":
                inner = self._infer_ctype(expr.args[0])
                return inner if inner != "u8" else "i64"
            return "i64"  # sparse position searches produce int64 lanes
        raise UnsupportedForC(f"cannot type expression {type(expr).__name__}")

    # -- statement walk --------------------------------------------------------
    def _walk(self, stmt: Stmt, env: Dict[Var, Any], n_code: str, mode: str) -> None:
        if isinstance(stmt, LetStmt) and mode == "compute":
            if self._expr_zone(stmt.value) == _RUN:
                raise UnsupportedForC("let binding depends on value data")
            # The NumPy tier binds let values as lane arrays (np.full for
            # scalars), so a weak literal becomes a strong f64/i64 array.
            ct = self._infer_ctype(stmt.value)
            self._var_ctypes[stmt.var] = _STRENGTHEN.get(ct, ct)
        super()._walk(stmt, env, n_code, mode)

    def _emit_store(self, store: Any, env: Dict[Var, Any], n_code: str) -> None:
        if len(store.indices) != 1:
            raise UnsupportedForC("stage-III stores must use a single flat index")
        name = store.buffer.name
        if name in self.aux_names:
            raise UnsupportedForC(f"store to auxiliary buffer {name!r}")
        size = self.flat_sizes.get(name)
        if size is None:
            raise UnsupportedForC(f"store to unknown flat buffer {name!r}")
        buf_ct = self._buffer_ctype(name)
        array = self._bind_buffer(name)
        self._stored.add(name)

        residual = self._vec._reduction_residual.get(id(store))
        value_expr = residual[1] if residual is not None else store.value
        if self._expr_zone(store.indices[0]) == _RUN:
            self._emit_run_index_store(
                store, env, n_code, residual, value_expr, buf_ct, array, size
            )
            return
        index = self._eval(store.indices[0], env, n_code)
        cval = self._ceval(value_expr, env, n_code)

        # Plan: one int64 scatter table per store, with every dropped lane
        # (out of bounds, or structurally invalid through the index or the
        # value) folded to -1 — the C loop's skip marker.  Mirrors the NumPy
        # emitter's keep-filter exactly: same lanes survive, same order.
        six = self._fresh("six")
        self._line(
            _PLAN,
            f"{six} = {self._as_lanes(index, n_code)}.astype(np.int64, copy=False)",
        )
        bad = f"({six} < 0) | ({six} >= {size})"
        for inv in [index.invalid] + cval.invalids:
            if inv is not None:
                if inv.zone == _RUN:
                    raise UnsupportedForC("value-dependent structural-zero mask")
                bad = f"({bad}) | {inv.code}"
        st = self._fresh("st")
        self._line(_PLAN, f"{st} = np.where({bad}, -1, {six})")
        tab = self._tab(st, "i64")
        count = self._ipar(f"int({n_code})")
        assign = self._store_assign(residual, cval, buf_ct, array)

        comment = repr(store).replace("*/", "* /").replace("\n", " ")
        self.crun.append(
            f"/* {comment} */\n"
            f"for (int64_t _l = 0; _l < {count}; ++_l) {{\n"
            f"    int64_t _si = {tab}[_l];\n"
            f"    if (_si < 0) continue;\n"
            f"    {assign}\n"
            f"}}"
        )

    def _emit_run_index_store(
        self,
        store: Any,
        env: Dict[Var, Any],
        n_code: str,
        residual: Any,
        value_expr: Expr,
        buf_ct: str,
        array: str,
        size: int,
    ) -> None:
        """Scatter through an index computed from value data (hyb rowmaps).

        The index expression reads a rebindable buffer, so no plan-time
        scatter table exists; the C loop evaluates it per lane instead.  The
        NumPy tier's keep-filter becomes a bounds test plus an optional
        structural-skip table, applied in lane order so duplicate targets
        accumulate identically to ``np.add.at`` over the kept lanes.
        """
        cidx = self._ceval(store.indices[0], env, n_code)
        if cidx.ctype not in ("i64", "ilit"):
            raise UnsupportedForC("store index is not integer-typed")
        cval = self._ceval(value_expr, env, n_code)
        skips = []
        for inv in cidx.invalids + cval.invalids:
            if inv is None:
                continue
            if inv.zone == _RUN:
                raise UnsupportedForC("value-dependent structural-zero mask")
            skips.append(inv.code)
        guard = ""
        if skips:
            bad = " | ".join(f"({code})" for code in skips)
            badtab = self._tab(f"np.asarray({bad}, dtype=bool)", "u8")
            guard = f"    if ({badtab}[_l]) continue;\n"
        count = self._ipar(f"int({n_code})")
        bound = self._ipar(f"int({size})")
        assign = self._store_assign(residual, cval, buf_ct, array)

        comment = repr(store).replace("*/", "* /").replace("\n", " ")
        self.crun.append(
            f"/* {comment} */\n"
            f"for (int64_t _l = 0; _l < {count}; ++_l) {{\n"
            f"{guard}"
            f"    int64_t _si = (int64_t)({cidx.code});\n"
            f"    if (_si < 0 || _si >= {bound}) continue;\n"
            f"    {assign}\n"
            f"}}"
        )

    def _store_assign(self, residual: Any, cval: _CVal, buf_ct: str, array: str) -> str:
        """The per-lane assignment statement for a (possibly reducing) store."""
        if residual is None:
            return f"{array}[_si] = {self._coerce(cval, buf_ct)};"
        op = "+" if residual[0] == "add" else "*"
        # ``np.ufunc.at`` sees the value as an *array*: the NumPy tier
        # expands a whole-scalar residual with np.full (strong f64/i64),
        # resolves the loop at the promoted dtype and casts each result
        # back — e.g. ``f32 *= 0.353..`` runs in float64 there.
        val_ct = _STRENGTHEN.get(cval.ctype, cval.ctype)
        promo = _promote(buf_ct, val_ct)
        if promo == buf_ct:
            return f"{array}[_si] {op}= {self._coerce(cval, buf_ct)};"
        return (
            f"{array}[_si] = ({_CDECL[buf_ct]})((({_CDECL[promo]}){array}[_si])"
            f" {op} {self._coerce(cval, promo)});"
        )

    # -- C expression emission ---------------------------------------------------
    def _ceval(self, expr: Expr, env: Dict[Var, Any], n_code: str) -> _CVal:
        if isinstance(expr, IntImm):
            return _CVal(str(int(expr.value)), "ilit")
        if isinstance(expr, FloatImm):
            value = float(expr.value)
            if not math.isfinite(value):
                raise UnsupportedForC("non-finite float literal")
            return _CVal(repr(value), "flit")
        if isinstance(expr, StringImm):
            raise UnsupportedForC("string value in a compute expression")
        if self._expr_zone(expr) == _PLAN:
            return self._plan_ref(expr, env, n_code)
        if isinstance(expr, BufferLoad):
            return self._ceval_load(expr, env, n_code)
        if isinstance(expr, BinaryOp):
            return self._ceval_binary(expr, env, n_code)
        if isinstance(expr, Not):
            a = self._ceval(expr.a, env, n_code)
            return _CVal(f"(!{a.code})", "u8", a.invalids)
        if isinstance(expr, Select):
            return self._ceval_select(expr, env, n_code)
        if isinstance(expr, Cast):
            return self._ceval_cast(expr, env, n_code)
        if isinstance(expr, Call):
            return self._ceval_call(expr, env, n_code)
        raise UnsupportedForC(f"cannot emit C for {type(expr).__name__}")

    def _plan_ref(self, expr: Expr, env: Dict[Var, Any], n_code: str) -> _CVal:
        """Evaluate a pure-plan subtree in Python and surface it to C.

        Lane arrays become typed tables; scalars travel through the
        ``ipar``/``fpar`` blocks.  Weak Python scalars keep their weak ctype
        (``ilit``/``flit``) so NEP-50 promotion against them matches NumPy;
        the glue's marshalling asserts every table's dtype against the static
        inference, so a mis-typed plan value degrades to a fallback instead
        of a wrong answer.
        """
        val = self._eval(expr, env, n_code)
        invalids = [val.invalid] if val.invalid is not None else []
        ct = self._infer_ctype(expr)
        if val.lanes:
            if ct in ("ilit", "flit"):
                raise UnsupportedForC("weak-typed lane array (internal)")
            tab = self._tab(val.code, ct)
            return _CVal(f"{tab}[_l]", ct, invalids)
        if ct == "u8":
            return _CVal(self._ipar(f"int(bool({val.code}))"), "u8", invalids)
        if ct in ("i64", "ilit"):
            return _CVal(self._ipar(f"int({val.code})"), ct, invalids)
        if ct == "i32":
            # The ipar block carries int64; the cast restores int32 semantics
            # (a strong np.int32 scalar promotes like an int32 array).
            return _CVal(f"((int32_t){self._ipar(f'int({val.code})')})", "i32", invalids)
        if ct == "f32":
            # float32 -> float64 -> float32 round-trips exactly; referencing
            # the fpar slot through a float cast keeps f32 arithmetic.
            return _CVal(f"((float){self._fpar(f'float({val.code})')})", "f32", invalids)
        return _CVal(self._fpar(f"float({val.code})"), ct, invalids)  # f64 / flit

    def _ceval_load(self, expr: BufferLoad, env: Dict[Var, Any], n_code: str) -> _CVal:
        if len(expr.indices) != 1:
            raise UnsupportedForC("stage-III loads must use a single flat index")
        name = expr.buffer.name
        size = self.flat_sizes.get(name)
        if size is None:
            raise UnsupportedForC(f"load from unknown flat buffer {name!r}")
        ct = self._buffer_ctype(name)
        array = self._bind_buffer(name)
        index = self._eval(expr.indices[0], env, n_code)
        if index.zone == _RUN:
            raise UnsupportedForC("load index depends on value data")

        if not index.lanes:
            pos = self._fresh("npos")
            self._line(index.zone, f"{pos} = int({index.code})")
            guard = f"0 <= {pos} < {size}"
            if index.invalid is not None:
                guard = f"not bool({index.invalid.code}) and {guard}"
            safe = self._fresh("npos")
            self._line(index.zone, f"{safe} = {pos} if ({guard}) else -1")
            ref = self._ipar(safe)
            code = f"(({ref} >= 0) ? {array}[{ref}] : {_CZERO[ct]})"
            return _CVal(code, ct)

        gi = self._fresh("gi")
        self._line(
            index.zone, f"{gi} = {index.code}.astype(np.int64, copy=False)"
        )
        bad = f"({gi} < 0) | ({gi} >= {size})"
        if index.invalid is not None:
            bad = f"({bad}) | {index.invalid.code}"
        gt = self._fresh("gt")
        self._line(index.zone, f"{gt} = np.where({bad}, -1, {gi})")
        tab = self._tab(gt, "i64")
        # A load consumes the structural zero (it evaluates to 0), so the
        # invalid mask does not propagate past it — same as the NumPy tier.
        code = f"(({tab}[_l] >= 0) ? {array}[{tab}[_l]] : {_CZERO[ct]})"
        return _CVal(code, ct)

    def _ceval_binary(self, expr: BinaryOp, env: Dict[Var, Any], n_code: str) -> _CVal:
        a = self._ceval(expr.a, env, n_code)
        b = self._ceval(expr.b, env, n_code)
        invalids = a.invalids + b.invalids
        kind = type(expr)
        infix = _INFIX_C.get(kind)
        if infix is not None:
            ct = _promote(a.ctype, b.ctype)
            code = f"({self._coerce(a, ct)} {infix} {self._coerce(b, ct)})"
            return _CVal(code, ct, invalids)
        cmp = _CMP_C.get(kind)
        if cmp is not None:
            ct = _promote(a.ctype, b.ctype)
            code = f"({self._coerce(a, ct)} {cmp} {self._coerce(b, ct)})"
            return _CVal(code, "u8", invalids)
        if kind in (And, Or):
            op = "&&" if kind is And else "||"
            return _CVal(f"({a.code} {op} {b.code})", "u8", invalids)
        if kind in (Min, Max):
            ct = _promote(a.ctype, b.ctype)
            if ct in ("ilit", "flit"):
                raise UnsupportedForC("weak-typed min/max (internal)")
            helper = ("_min_" if kind is Min else "_max_") + ct
            code = f"{helper}({self._coerce(a, ct)}, {self._coerce(b, ct)})"
            return _CVal(code, ct, invalids)
        if kind is Div:
            ct = _promote(a.ctype, b.ctype)
            if ct in ("i64", "ilit"):
                ct = "f64"  # NumPy true divide: integer operands widen to f64
            code = f"({self._coerce(a, ct)} / {self._coerce(b, ct)})"
            return _CVal(code, ct, invalids)
        raise UnsupportedForC(f"unsupported binary op {kind.__name__}")

    def _ceval_select(self, expr: Select, env: Dict[Var, Any], n_code: str) -> _CVal:
        cond = self._ceval(expr.condition, env, n_code)
        true = self._ceval(expr.true_value, env, n_code)
        false = self._ceval(expr.false_value, env, n_code)
        if true.invalids or false.invalids:
            # Branch-chosen invalid masks need per-lane selection; the NumPy
            # tier handles it, so fall back rather than approximate.
            raise UnsupportedForC("structural zero inside a select branch")
        ct = _promote(true.ctype, false.ctype)
        if ct in ("ilit", "flit"):
            raise UnsupportedForC("weak-typed select (internal)")
        code = f"({cond.code} ? {self._coerce(true, ct)} : {self._coerce(false, ct)})"
        return _CVal(code, ct, cond.invalids)

    def _ceval_cast(self, expr: Cast, env: Dict[Var, Any], n_code: str) -> _CVal:
        value = self._ceval(expr.value, env, n_code)
        if expr.dtype.startswith("int"):
            if value.ctype == "ilit":
                return value  # int(int) stays a weak Python scalar
            if value.ctype == "flit":
                raise UnsupportedForC("cast of a weak float to int")
            return _CVal(f"((int64_t){value.code})", "i64", value.invalids)
        if expr.dtype.startswith("float"):
            if value.ctype == "flit":
                return value  # float(float) stays a weak Python scalar
            if value.ctype == "ilit":
                raise UnsupportedForC("cast of a weak int to float")
            return _CVal(f"((double){value.code})", "f64", value.invalids)
        return value

    def _ceval_call(self, call: Call, env: Dict[Var, Any], n_code: str) -> _CVal:
        if call.func == "sqrt":
            a = self._ceval(call.args[0], env, n_code)
            if a.ctype == "f32":
                return _CVal(f"sqrtf({a.code})", "f32", a.invalids)
            return _CVal(f"sqrt({self._coerce(a, 'f64')})", "f64", a.invalids)
        if call.func == "abs":
            a = self._ceval(call.args[0], env, n_code)
            if a.ctype == "f32":
                return _CVal(f"fabsf({a.code})", "f32", a.invalids)
            if a.ctype in ("f64", "flit"):
                return _CVal(f"fabs({self._coerce(a, 'f64')})", "f64", a.invalids)
            if a.ctype == "i32":
                # The narrowing cast wraps abs(INT32_MIN) back to INT32_MIN,
                # exactly like NumPy's int32 abs.
                return _CVal(f"((int32_t)llabs({self._coerce(a, 'i64')}))", "i32", a.invalids)
            return _CVal(f"llabs({self._coerce(a, 'i64')})", "i64", a.invalids)
        # exp/tanh/log: NumPy's SIMD implementations are not bit-identical to
        # libm, so these stay on the NumPy tier.  Position searches are
        # plan-zone and never reach here.
        raise UnsupportedForC(f"intrinsic {call.func!r} has no bit-exact C form")

    def _coerce(self, val: _CVal, target: str) -> str:
        src, code = val.ctype, val.code
        if src == target:
            return code
        if target == "f64":
            if src == "flit":
                return code  # a weak float is already a double expression
            return f"((double)({code}))"
        if target == "f32":
            # Weak Python scalars convert to float32 in one rounding step
            # (int64->float / double->float), matching NEP-50 exactly.
            return f"((float)({code}))"
        if target == "i64":
            # Float sources only occur at store boundaries, where NumPy's
            # astype truncates toward zero — as does the C cast.
            return f"((int64_t)({code}))"
        if target == "i32":
            return f"((int32_t)({code}))"
        raise UnsupportedForC(f"cannot coerce {src!r} to {target!r}")

    # -- assembly --------------------------------------------------------------
    def emit(self) -> Tuple[str, str]:
        body = self.func.body
        self.crun.append("/* ---- pass 1: reduction initialisation ---- */")
        self._walk(body, {}, "1", "init")
        self.crun.append("/* ---- pass 2: compute ---- */")
        self._walk(body, {}, "1", "compute")
        for line in self.run:
            # The inherited plan machinery must never have produced Python
            # run-zone code: everything per-call lives in the C body.
            if line.lstrip() and not line.lstrip().startswith("#"):
                raise UnsupportedForC("run-zone Python leaked into the C emitter")
        plan_blocks, aliases = _cse_plan(self.plan)
        return self._render_c(), self._render_glue(plan_blocks, aliases)

    def _render_c(self) -> str:
        lines: List[str] = [
            f"/* Emitted C kernel for {self.func.name!r} (native stage-IV backend).",
            " *",
            f" * Generated by repro.core.codegen.emit_c v{NATIVE_VERSION}; do not edit.",
            " * The per-call body: one flat loop per store, gathering through the",
            " * plan-built index tables (tabs) with -1 marking dropped lanes.",
            " * Sizes never appear here — every structure of this program family",
            " * shares this source, so one compile serves the whole family.",
            " */",
            "#include <stdint.h>",
            "#include <stdlib.h>",
            "#include <math.h>",
            "",
            _C_HELPERS,
            "",
            "int run(void **bufs, void **tabs, const int64_t *ipar, const double *fpar)",
            "{",
            "    (void) bufs; (void) tabs; (void) ipar; (void) fpar;",
        ]
        for slot, name in enumerate(self._val_used):
            decl = _CDECL[self._buffer_ctype(name)]
            const = "" if name in self._stored else "const "
            lines.append(f"    {const}{decl} *{name} = ({const}{decl} *) bufs[{slot}];")
        for slot, (_, ct) in enumerate(self._ctabs):
            decl = _CDECL[ct]
            lines.append(f"    const {decl} *_t{slot} = (const {decl} *) tabs[{slot}];")
        for slot in range(len(self._cipars)):
            lines.append(f"    const int64_t _ip{slot} = ipar[{slot}];")
        for slot in range(len(self._cfpars)):
            lines.append(f"    const double _fp{slot} = fpar[{slot}];")
        lines.append("")
        for block in self.crun:
            lines.extend(_indent(block, 1))
        lines.append("    return 0;")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def _render_glue(self, plan_blocks: List[str], aliases: Dict[str, str]) -> str:
        def fix(code: str) -> str:
            return _apply_aliases(code, aliases)

        plan_text = "\n".join(plan_blocks)
        helper_lines = ["np = helpers['np']"]
        if "ragged_arange(" in plan_text:
            helper_lines.append("ragged_arange = helpers['ragged_arange']")
        if "coords_to_positions(" in plan_text:
            helper_lines.append("coords_to_positions = helpers['coords_to_positions']")
        helper_lines.append("_marshal = helpers['marshal']")
        for name in self._aux_used:
            helper_lines.append(f"{name} = aux[{name!r}]")

        lines: List[str] = [
            f'"""Native glue for {self.func.name!r} (stage-IV C backend).',
            "",
            f"Generated by repro.core.codegen.emit_c v{NATIVE_VERSION}; do not edit.",
            "The make_kernel body is the plan: lane expansion and gather/scatter",
            "tables fixed once from the structural data, then marshalled into the",
            "compiled run() of the companion C module.",
            '"""',
            "",
            f"MAX_LANES = {MAX_LANES}",
            "",
            "",
            "def make_kernel(axes, aux, helpers, lib):",
        ]
        for text in helper_lines:
            lines.extend(_indent(text, 1))
        lines.append("    # ---- plan: computed once from structural data ----")
        for text in plan_blocks:
            lines.extend(_indent(text, 1))
        lines.append("    _tabs = [")
        for code, ct in self._ctabs:
            lines.append(f"        _marshal({fix(code)}, {ct!r}),")
        lines.append("    ]")
        lines.append("    _ipar = np.asarray([")
        for code in self._cipars:
            lines.append(f"        {fix(code)},")
        lines.append("    ], dtype=np.int64)")
        lines.append("    _fpar = np.asarray([")
        for code in self._cfpars:
            lines.append(f"        {fix(code)},")
        lines.append("    ], dtype=np.float64)")
        lines.append(
            "    return helpers['native_invoke']"
            f"(lib, _tabs, _ipar, _fpar, {list(self._val_used)!r})"
        )
        return "\n".join(lines) + "\n"


def emit_c_source(func: PrimFunc) -> Tuple[str, str]:
    """Emit the native (C, glue) source pair for a stage-III program.

    Raises :class:`UnsupportedForC` (a subclass of
    :class:`~repro.core.codegen.emit_numpy.UnsupportedForEmission`) when the
    program falls outside the native fragment; callers fall back to the
    emitted NumPy tier.
    """
    return _CEmitter(func).emit()


# -- toolchain ----------------------------------------------------------------
def find_compiler() -> Optional[str]:
    """Path of the C compiler to use, or ``None`` when the tier is unavailable.

    ``$REPRO_NATIVE=off`` disables the tier; ``$CC`` (when set) names the
    *only* candidate — pointing it at a non-existent path is the supported
    way to simulate a machine without a compiler.  Deliberately not memoised
    so tests (and the no-compiler CI lane) can flip the environment per test.
    """
    gate = os.environ.get(NATIVE_ENV_VAR)
    if gate is not None and gate.strip().lower() in _NATIVE_DISABLED_VALUES:
        return None
    try:
        import cffi  # noqa: F401  (ships with the toolchain; never installed here)
    except ImportError:  # pragma: no cover - cffi is part of the baked image
        return None
    cc = os.environ.get("CC")
    candidates = [cc] if cc else ["cc", "gcc", "clang"]
    for candidate in candidates:
        if not candidate:
            continue
        path = shutil.which(candidate)
        if path:
            return path
    return None


def toolchain_available() -> bool:
    """Whether the native tier can compile on this machine, right now."""
    return find_compiler() is not None


def native_tag() -> str:
    """Platform + Python-ABI tag a compiled artifact is keyed by on disk."""
    return f"{sys.platform}-{_platform.machine()}-{sys.implementation.cache_tag}"


def source_sha(c_source: str) -> str:
    return hashlib.sha256(c_source.encode()).hexdigest()


# -- compilation + loading -----------------------------------------------------
_FFI: Any = None
_FFI_LOCK = threading.Lock()

#: sha256(C source) -> dlopened library (or ``False`` after a failed build),
#: so a hypothesis battery over many structures of one program family
#: compiles exactly once per process.
_LIB_MEMO: Dict[str, Any] = {}
_MEMO_LOCK = threading.Lock()

_SCRATCH: Optional[Path] = None


def _get_ffi() -> Any:
    global _FFI
    with _FFI_LOCK:
        if _FFI is None:
            import cffi

            ffi = cffi.FFI()
            ffi.cdef(
                "int run(void **bufs, void **tabs,"
                " const int64_t *ipar, const double *fpar);"
            )
            _FFI = ffi
        return _FFI


def _scratch_dir() -> Path:
    """Per-process directory for compiled artifacts with no disk cache."""
    global _SCRATCH
    with _MEMO_LOCK:
        if _SCRATCH is None:
            _SCRATCH = Path(tempfile.mkdtemp(prefix="repro-native-"))
            import atexit

            atexit.register(shutil.rmtree, str(_SCRATCH), True)
        return _SCRATCH


def compile_so(c_source: str, out_path: Path) -> None:
    """Compile *c_source* into a shared object at *out_path* (atomically)."""
    compiler = find_compiler()
    if compiler is None:
        raise NativeBuildError("no C compiler available")
    with tempfile.TemporaryDirectory(prefix="repro-cc-") as tmpdir:
        src = Path(tmpdir) / "kernel.c"
        obj = Path(tmpdir) / "kernel.so"
        src.write_text(c_source)
        try:
            proc = subprocess.run(
                [compiler, *CFLAGS, str(src), "-o", str(obj), "-lm"],
                capture_output=True,
                text=True,
                timeout=_COMPILE_TIMEOUT_S,
            )
        except (OSError, subprocess.TimeoutExpired) as exc:
            raise NativeBuildError(f"C compiler failed to run: {exc}") from exc
        if proc.returncode != 0:
            raise NativeBuildError(
                f"C compilation failed (exit {proc.returncode}):\n{proc.stderr[-2000:]}"
            )
        out_path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(out_path.parent), suffix=".so.tmp")
        os.close(fd)
        shutil.copy(str(obj), tmp)
        os.replace(tmp, out_path)


def _dlopen(path: Path) -> Any:
    return _get_ffi().dlopen(str(path))


def _obtain_lib(sha: str, c_source: str, disk: Any, key: Optional[str], stats: Any) -> Any:
    """A dlopened library for *c_source*: disk-cached artifact or fresh build."""
    if disk is not None and key is not None:
        cached = disk.get_native(key, sha)
        if cached is not None:
            try:
                lib = _dlopen(cached)
            except OSError:
                disk.discard_native(key)
            else:
                if stats is not None:
                    stats.native_hits += 1
                return lib
    so_path: Optional[Path] = None
    if disk is not None and key is not None:
        so_path = disk.reserve_native(key)
    if so_path is None:
        so_path = _scratch_dir() / f"{sha[:32]}.so"
    compile_so(c_source, so_path)
    if disk is not None and key is not None:
        disk.publish_native(key, c_source, sha)
    lib = _dlopen(so_path)
    if stats is not None:
        stats.native_rebuilds += 1
    return lib


def _marshal(value: Any, ct: str) -> np.ndarray:
    """Check a plan table against its statically inferred dtype and pack it.

    A mismatch means the static inference in :class:`_CEmitter` disagrees
    with what the plan actually computed; raising here turns that into a
    fallback to the NumPy tier instead of a silently wrong answer.
    """
    arr = np.asarray(value)
    if ct == "u8":
        if arr.dtype != np.bool_:
            raise NativeBuildError(f"plan table expected bool, got {arr.dtype}")
        return np.ascontiguousarray(arr.astype(np.uint8))
    expected = {"i64": np.int64, "i32": np.int32, "f64": np.float64, "f32": np.float32}[ct]
    if arr.dtype != expected:
        raise NativeBuildError(f"plan table expected {np.dtype(expected)}, got {arr.dtype}")
    return np.ascontiguousarray(arr)


def _native_invoke(
    lib: Any,
    tabs: List[np.ndarray],
    ipar: np.ndarray,
    fpar: np.ndarray,
    bufnames: List[str],
) -> Any:
    """Bind the marshalled plan to the compiled library; return ``run(arrays)``."""
    ffi = _get_ffi()
    keepalive = (list(tabs), np.ascontiguousarray(ipar), np.ascontiguousarray(fpar))
    tab_ptrs = ffi.new(
        "void *[]", [ffi.cast("void *", t.ctypes.data) for t in keepalive[0]] or [ffi.NULL]
    )
    ipar_ptr = ffi.cast("int64_t *", keepalive[1].ctypes.data)
    fpar_ptr = ffi.cast("double *", keepalive[2].ctypes.data)

    def run(arrays: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        bufs = [arrays[name] for name in bufnames]
        for buf in bufs:
            if not buf.flags.c_contiguous:
                raise NativeBuildError("native tier requires contiguous buffers")
        buf_ptrs = ffi.new(
            "void *[]", [ffi.cast("void *", b.ctypes.data) for b in bufs] or [ffi.NULL]
        )
        rc = lib.run(buf_ptrs, tab_ptrs, ipar_ptr, fpar_ptr)
        if rc != 0:
            raise RuntimeError(f"native kernel returned {rc}")
        return arrays

    run._keepalive = keepalive  # pin table/param storage for the library's lifetime
    return run


def load_native(
    func: PrimFunc,
    c_source: str,
    glue_source: str,
    disk: Any = None,
    key: Optional[str] = None,
    stats: Any = None,
) -> Any:
    """Compile (or reuse) the native artifact and execute the glue plan.

    Returns the ``run(arrays)`` closure of the native tier.  Any failure —
    no compiler, a compile error, a plan that overflows ``MAX_LANES``, a
    marshalling mismatch — raises, and the caller marks the native tier
    unavailable for this kernel (deciding the fallback once).

    ``disk``/``key`` select the persistent artifact store (shared across
    processes; see :meth:`DiskKernelCache.get_native`); ``stats`` receives
    ``native_hits`` / ``native_rebuilds``.
    """
    from ...runtime.vectorized import coords_to_positions

    sha = source_sha(c_source)
    with _MEMO_LOCK:
        lib = _LIB_MEMO.get(sha)
    if lib is False:
        raise NativeBuildError("native build previously failed for this source")
    if lib is None:
        try:
            lib = _obtain_lib(sha, c_source, disk, key, stats)
        except NativeBuildError:
            with _MEMO_LOCK:
                _LIB_MEMO[sha] = False
            raise
        with _MEMO_LOCK:
            lib = _LIB_MEMO.setdefault(sha, lib)

    namespace: Dict[str, Any] = {}
    code = compile(glue_source, f"<native:{func.name}>", "exec")
    exec(code, namespace)
    helpers = {
        "np": np,
        "ragged_arange": ragged_arange,
        "coords_to_positions": coords_to_positions,
        "marshal": _marshal,
        "native_invoke": _native_invoke,
    }
    axes = {axis.name: axis for axis in func.axes}
    return namespace["make_kernel"](axes, aux_arrays(func), helpers, lib)
