"""Structural kernel caching: compile once, run many.

Lowering a stage-I program through sparse iteration lowering, sparse buffer
lowering and horizontal fusion is pure Python tree rewriting and dominates
the cost of :func:`~repro.core.codegen.build.build`.  The same *structure* is
lowered over and over — the tuner revisits format configurations, models run
the same kernel every layer/epoch, benchmarks sweep feature sizes over one
graph.  This module provides

* :func:`structural_fingerprint` — a stable content hash of a program's
  structure: the printed program text (axes, buffers, iteration bodies), the
  per-axis structural data (``indptr`` / ``indices`` contents, lengths, nnz)
  and the build configuration.  Buffer *values* are deliberately excluded:
  two programs with the same structure but different data lower to the same
  loop nest, and the value arrays are rebound at execution time.
* :class:`KernelCache` — an LRU map from fingerprint to lowered program,
  with hit/miss statistics.

The process-wide default cache used by ``build()`` lives here; a
:class:`~repro.runtime.session.Session` can hold its own isolated cache.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple

import numpy as np

from ..program import PrimFunc


def _hash_array(digest: "hashlib._Hash", array: Optional[np.ndarray]) -> None:
    if array is None:
        digest.update(b"none")
        return
    arr = np.ascontiguousarray(array)
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())


def structural_fingerprint(func: PrimFunc, config: Optional[Mapping[str, Any]] = None) -> str:
    """A stable hash of the program structure and build configuration.

    Two calls return the same fingerprint exactly when the programs lower to
    the same stage-III loop nest: the printed program (iteration structure,
    buffer shapes/dtypes) and every axis's structural arrays must match.
    Value data bound to buffers does not participate.
    """
    digest = hashlib.sha256()
    digest.update(func.script().encode())
    for axis in func.axes:
        digest.update(f"|axis:{type(axis).__name__}:{axis.name}:{axis.length}".encode())
        digest.update(f":{getattr(axis, 'nnz', '')}:{getattr(axis, 'nnz_cols', '')}".encode())
        _hash_array(digest, getattr(axis, "indptr", None))
        _hash_array(digest, getattr(axis, "indices", None))
    for buf in list(func.buffers) + list(func.aux_buffers):
        digest.update(f"|buf:{buf.name}:{buf.dtype}:{buf.scope}".encode())
    if config:
        digest.update(repr(sorted(config.items())).encode())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`KernelCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, hit_rate={self.hit_rate:.0%})"
        )


class KernelCache:
    """An LRU cache from structural fingerprint to lowered programs.

    Entries hold the lowered stage-III program (and its stage-II form, kept
    for scheduling introspection); value data is rebound per build, so one
    entry serves every workload that shares the structure.
    """

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, Tuple[PrimFunc, Optional[PrimFunc]]]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[Tuple[PrimFunc, Optional[PrimFunc]]]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: str, lowered: PrimFunc, stage2: Optional[PrimFunc] = None) -> None:
        self._entries[key] = (lowered, stage2)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self.stats = CacheStats()


#: Process-wide cache used by ``build()`` unless a caller supplies its own.
_GLOBAL_CACHE = KernelCache()


def global_kernel_cache() -> KernelCache:
    """The process-wide kernel cache shared by default ``build()`` calls."""
    return _GLOBAL_CACHE


def resolve_cache(cache: Any) -> Optional[KernelCache]:
    """Normalise a ``cache`` argument: None -> global, False -> disabled."""
    if cache is None:
        return _GLOBAL_CACHE
    if cache is False:
        return None
    if isinstance(cache, KernelCache):
        return cache
    raise TypeError(f"cache must be a KernelCache, None or False, got {type(cache)}")
