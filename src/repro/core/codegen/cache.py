"""Structural kernel caching: compile once, run many — in memory and on disk.

Lowering a stage-I program through sparse iteration lowering, sparse buffer
lowering and horizontal fusion is pure Python tree rewriting and dominates
the cost of :func:`~repro.core.codegen.build.build`.  The same *structure* is
lowered over and over — the tuner revisits format configurations, models run
the same kernel every layer/epoch, benchmarks sweep feature sizes over one
graph.  This module provides

* :func:`structural_fingerprint` — a stable content hash of a program's
  structure: the printed program text (axes, buffers, iteration bodies, value
  dtypes), the per-axis structural data (``indptr`` / ``indices`` contents,
  lengths, nnz), the flattened-buffer layout and the build/executor
  configuration.  Buffer *values* are deliberately excluded: two programs
  with the same structure but different data lower to the same loop nest, and
  the value arrays are rebound at execution time.  Value *dtypes* do
  participate — a float32 entry can never serve a float64 caller.
* :class:`CacheEntry` — one cached compilation product: the lowered stage-III
  program, its stage-II form, the emitted NumPy source (stage IV) and the
  lazily compiled runner.
* :class:`KernelCache` — a thread-safe LRU map from fingerprint to
  :class:`CacheEntry`, with hit/miss statistics and an optional persistent
  :class:`DiskKernelCache` layer underneath, so a fresh process warm-starts
  without re-lowering or re-emitting anything.
* :class:`DiskKernelCache` — the fingerprint-keyed on-disk store under
  ``$REPRO_KERNEL_CACHE`` (or ``~/.cache/repro-kernels``): versioned,
  corruption-tolerant, written atomically (temp file + rename).

The process-wide default cache used by ``build()`` lives here; a
:class:`~repro.runtime.session.Session` can hold its own isolated cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from ..nputils import MAX_LANES
from ..program import PrimFunc

try:  # POSIX advisory locks back the cross-process single-flight guard.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

#: Bumped whenever the fingerprint recipe itself changes, so stale on-disk
#: entries from an older scheme can never be confused for current ones.
FINGERPRINT_VERSION = 2

#: Bumped whenever the persisted payload layout changes (directory ``v<N>``).
DISK_SCHEMA_VERSION = 1

#: Environment variable naming the on-disk cache root.  Unset disables the
#: persistent layer; the values ``0`` / ``off`` / ``false`` disable it too.
CACHE_ENV_VAR = "REPRO_KERNEL_CACHE"

_DISABLED_ENV_VALUES = {"", "0", "off", "false", "disabled", "none"}

#: Environment variable overriding the single-flight wait deadline (seconds).
FLIGHT_TIMEOUT_ENV_VAR = "REPRO_FLIGHT_TIMEOUT"

#: How long a builder waits for another builder's in-flight lowering of the
#: same fingerprint before degrading to a duplicate lowering.  Generous: a
#: lowering takes well under a second, so hitting this means the owner is
#: wedged and duplicating its work is the safe way out.
DEFAULT_FLIGHT_TIMEOUT = 120.0

#: Poll interval while waiting on another *process's* flight (thread waiters
#: block on an event instead and never poll).
_FLIGHT_POLL_S = 0.01


def _flight_timeout() -> float:
    value = os.environ.get(FLIGHT_TIMEOUT_ENV_VAR)
    if value:
        try:
            return max(0.0, float(value))
        except ValueError:
            pass
    return DEFAULT_FLIGHT_TIMEOUT


def _hash_array(digest: "hashlib._Hash", array: Optional[np.ndarray]) -> None:
    if array is None:
        digest.update(b"none")
        return
    arr = np.ascontiguousarray(array)
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())


def structural_fingerprint(func: PrimFunc, config: Optional[Mapping[str, Any]] = None) -> str:
    """A stable hash of the program structure and build configuration.

    Two calls return the same fingerprint exactly when the programs lower to
    the same stage-III loop nest *and* execute identically: the printed
    program (iteration structure, buffer shapes and value dtypes), every
    axis's structural arrays, the flat-buffer layout and the
    executor-relevant configuration (lane budget, emitter version) must all
    match.  Value data bound to buffers does not participate.
    """
    from .emit_numpy import EMITTER_VERSION

    digest = hashlib.sha256()
    digest.update(f"|fingerprint:v{FINGERPRINT_VERSION}".encode())
    digest.update(func.script().encode())
    for axis in func.axes:
        digest.update(f"|axis:{type(axis).__name__}:{axis.name}:{axis.length}".encode())
        digest.update(f":{getattr(axis, 'nnz', '')}:{getattr(axis, 'nnz_cols', '')}".encode())
        _hash_array(digest, getattr(axis, "indptr", None))
        _hash_array(digest, getattr(axis, "indices", None))
    for buf in list(func.buffers) + list(func.aux_buffers):
        digest.update(f"|buf:{buf.name}:{buf.dtype}:{buf.scope}".encode())
    for flat in func.flat_buffers:
        digest.update(f"|flat:{flat.name}:{flat.size}:{flat.dtype}:{flat.scope}".encode())
    # Executor-relevant configuration: anything that changes what the cached
    # compilation products (loop nest, emitted source) would look like.
    digest.update(f"|exec:max_lanes={MAX_LANES}:emitter=v{EMITTER_VERSION}".encode())
    if config:
        digest.update(repr(sorted(config.items())).encode())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`KernelCache`.

    ``hits`` counts every lookup satisfied without lowering (from memory or
    from disk); ``disk_hits`` counts the subset that was loaded from the
    persistent layer.  ``lowerings`` / ``emissions`` count the expensive
    compilation passes actually executed, so a warm-started process can
    assert both are zero.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_errors: int = 0
    lowerings: int = 0
    emissions: int = 0
    #: Native (.so) artifacts loaded from disk without invoking the compiler.
    native_hits: int = 0
    #: Native artifacts built by actually running the C compiler (cold cache,
    #: version/platform skew, or corruption — skew always rebuilds).
    native_rebuilds: int = 0
    #: Flights claimed as owner (the caller went on to lower the program).
    flight_builds: int = 0
    #: Flights resolved by another builder's entry (thread or process).
    flight_shared: int = 0
    #: Flights that hit the wait deadline and degraded to a duplicate build.
    flight_timeouts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, disk_hits={self.disk_hits}, "
            f"hit_rate={self.hit_rate:.0%})"
        )


@dataclass
class CacheEntry:
    """One cached compilation product, shared by every build that hits it.

    ``lowered`` and ``stage2`` are purely structural (value data detached);
    ``source`` is the emitted stage-IV NumPy module text, or ``None`` when
    the program falls outside the emitter's fragment.  ``runner`` caches the
    compiled ``run(arrays)`` closure: ``None`` until first use, ``False``
    after a failed compile/plan (so the fallback is decided once), and the
    callable afterwards.  ``lock`` serialises that lazy compilation.

    The native tier mirrors that protocol: ``native`` holds the emitted
    ``(c_source, glue_source)`` pair (``None`` unset, ``False`` outside the
    C emitter's fragment) and ``native_runner`` the compiled-and-loaded
    closure.  Both are per-process — only the shared object itself persists,
    in the disk layer keyed by source hash, platform and ABI.
    """

    lowered: PrimFunc
    stage2: Optional[PrimFunc] = None
    source: Optional[str] = None
    runner: Any = None
    native: Any = None
    native_runner: Any = None
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class DiskKernelCache:
    """Fingerprint-keyed persistent store for lowered programs + emitted source.

    Layout (all files live under ``<root>/v<DISK_SCHEMA_VERSION>/``):

    * ``<fingerprint>.pkl`` — the authoritative payload: a pickled dict with
      the schema/emitter versions, program name, structural stage-III
      program and emitted source;
    * ``<fingerprint>.py`` — the emitted source as a readable Python file
      (informational; never loaded back);
    * ``<fingerprint>.json`` — human-readable metadata, plus the ``native``
      validity record (see below);
    * ``<fingerprint>.c`` / ``<fingerprint>.so`` — the native tier's emitted
      C source and compiled shared object.  The ``.so`` is only ever loaded
      when the json's ``native`` record matches the current native-emitter
      version, the hash of the freshly re-emitted C source, and this
      machine's platform + Python ABI tags — any skew is a miss that
      recompiles and republishes, never an import of a stale artifact.

    Writes go through a temporary file in the same directory followed by an
    atomic :func:`os.replace`, so concurrent writers can never leave a
    half-written payload behind.  Reads treat *any* failure (truncated
    pickle, version mismatch, unpicklable content) as a miss, recording it in
    ``stats.errors`` and removing the offending entry best-effort.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        if root is None:
            env = os.environ.get(CACHE_ENV_VAR)
            if env is None or env.strip().lower() in _DISABLED_ENV_VALUES:
                # Disable tokens name no directory; fall back to the default
                # location (an explicit Session(persistent=True) asked for it).
                root = "~/.cache/repro-kernels"
            else:
                root = env
        self.root = Path(root).expanduser()
        self.dir = self.root / f"v{DISK_SCHEMA_VERSION}"
        self.stats = _DiskStats()

    @classmethod
    def from_env(cls) -> Optional["DiskKernelCache"]:
        """The cache named by ``$REPRO_KERNEL_CACHE``, or ``None`` if disabled."""
        value = os.environ.get(CACHE_ENV_VAR)
        if value is None or value.strip().lower() in _DISABLED_ENV_VALUES:
            return None
        return cls(value)

    # -- paths -----------------------------------------------------------------
    def _paths(self, key: str) -> Tuple[Path, Path, Path]:
        base = self.dir / key
        return base.with_suffix(".pkl"), base.with_suffix(".py"), base.with_suffix(".json")

    def __contains__(self, key: str) -> bool:
        return self._paths(key)[0].exists()

    def __len__(self) -> int:
        if not self.dir.is_dir():
            return 0
        return sum(1 for _ in self.dir.glob("*.pkl"))

    # -- read ------------------------------------------------------------------
    def get(self, key: str) -> Optional[CacheEntry]:
        """Load one entry, or ``None`` on miss / corruption / version skew."""
        from .emit_numpy import EMITTER_VERSION

        pkl_path = self._paths(key)[0]
        try:
            blob = pkl_path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            payload = pickle.loads(blob)
            if not isinstance(payload, dict):
                raise TypeError("payload is not a dict")
            if payload["schema"] != DISK_SCHEMA_VERSION:
                raise ValueError(f"schema {payload['schema']} != {DISK_SCHEMA_VERSION}")
            if payload["fingerprint"] != key:
                raise ValueError("fingerprint mismatch (renamed or corrupted entry)")
            lowered = payload["program"]
            if not isinstance(lowered, PrimFunc):
                raise TypeError("program payload is not a PrimFunc")
            stage2 = payload["stage2"]
            if stage2 is not None and not isinstance(stage2, PrimFunc):
                raise TypeError("stage2 payload is not a PrimFunc")
            source = payload["source"]
            # Source emitted by a different emitter version is stale; the
            # program itself is still keyed by a fingerprint that embeds the
            # emitter version, so a skew here means a hand-edited entry.
            if source is not None and payload["emitter_version"] != EMITTER_VERSION:
                raise ValueError("emitter version skew")
        except Exception:
            self.stats.errors += 1
            self._discard(key)
            return None
        self.stats.hits += 1
        return CacheEntry(lowered=lowered, stage2=stage2, source=source)

    # -- write -----------------------------------------------------------------
    def put(self, key: str, entry: CacheEntry, name: str = "") -> None:
        """Persist one entry; failures are swallowed (the cache is best-effort)."""
        from .emit_numpy import EMITTER_VERSION

        payload = {
            "schema": DISK_SCHEMA_VERSION,
            "fingerprint": key,
            "emitter_version": EMITTER_VERSION,
            "name": name or entry.lowered.name,
            "program": entry.lowered,
            "stage2": entry.stage2,
            "source": entry.source,
        }
        meta = {
            "schema": DISK_SCHEMA_VERSION,
            "fingerprint": key,
            "fingerprint_version": FINGERPRINT_VERSION,
            "emitter_version": EMITTER_VERSION,
            "name": payload["name"],
            "emitted": entry.source is not None,
            "numpy": np.__version__,
        }
        pkl_path, py_path, json_path = self._paths(key)
        try:
            # Preserve an existing native validity record: the numpy payload
            # and the compiled artifact are written by different code paths.
            existing = json.loads(json_path.read_text())
            if isinstance(existing, dict) and "native" in existing:
                meta["native"] = existing["native"]
        except (OSError, ValueError):
            pass
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            self._atomic_write(pkl_path, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
            if entry.source is not None:
                header = f"# fingerprint: {key}\n"
                self._atomic_write(py_path, (header + entry.source).encode())
            self._atomic_write(json_path, json.dumps(meta, indent=2).encode())
        except OSError:
            self.stats.errors += 1
            return
        self.stats.writes += 1

    def _atomic_write(self, path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _discard(self, key: str) -> None:
        for path in self._paths(key) + self._native_paths(key):
            try:
                path.unlink()
            except OSError:
                pass

    # -- native artifacts ------------------------------------------------------
    def _native_paths(self, key: str) -> Tuple[Path, Path]:
        base = self.dir / key
        return base.with_suffix(".c"), base.with_suffix(".so")

    def get_native(self, key: str, sha: str) -> Optional[Path]:
        """Path of a valid compiled artifact for *key*, or ``None`` on miss.

        Valid means: the json metadata carries a ``native`` record whose
        emitter version, source hash, platform tag and Python ABI all match
        this process, and the ``.so`` exists.  Anything else — missing or
        unreadable metadata, version/platform/ABI skew, a hash that does not
        match the re-emitted source, a planted or truncated file — is a miss
        (the skewed artifact is dropped best-effort so it cannot be retried).
        """
        from .emit_c import NATIVE_VERSION, native_tag

        so_path = self._native_paths(key)[1]
        json_path = self._paths(key)[2]
        try:
            meta = json.loads(json_path.read_text())
            record = meta["native"]
            if record["native_version"] != NATIVE_VERSION:
                raise ValueError("native emitter version skew")
            if record["source_sha256"] != sha:
                raise ValueError("native source hash mismatch")
            if record["tag"] != native_tag():
                raise ValueError("platform/ABI skew")
            if not so_path.exists():
                raise FileNotFoundError(so_path)
        except (OSError, ValueError, KeyError, TypeError):
            self.discard_native(key)
            return None
        return so_path

    def reserve_native(self, key: str) -> Optional[Path]:
        """Where the compiler should place *key*'s ``.so`` (``None`` on error)."""
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            return None
        return self._native_paths(key)[1]

    def publish_native(self, key: str, c_source: str, sha: str) -> None:
        """Record a freshly compiled artifact's validity metadata.

        Called after the ``.so`` landed (atomically) at the reserved path:
        writes the ``.c`` source alongside it and merges the ``native``
        record into the json metadata.  The json is written last — a crash
        between the ``.so`` and the json leaves an artifact that simply
        reads as a miss.  Failures are swallowed (the cache is best-effort).
        """
        from .emit_c import NATIVE_VERSION, native_tag

        c_path = self._native_paths(key)[0]
        json_path = self._paths(key)[2]
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            header = f"/* fingerprint: {key} */\n"
            self._atomic_write(c_path, (header + c_source).encode())
            try:
                meta = json.loads(json_path.read_text())
                if not isinstance(meta, dict):
                    meta = {}
            except (OSError, ValueError):
                meta = {}
            meta["native"] = {
                "native_version": NATIVE_VERSION,
                "source_sha256": sha,
                "tag": native_tag(),
            }
            self._atomic_write(json_path, json.dumps(meta, indent=2).encode())
        except OSError:
            self.stats.errors += 1
            return
        self.stats.writes += 1

    def discard_native(self, key: str) -> None:
        """Drop *key*'s native artifact (and its validity record) best-effort."""
        for path in self._native_paths(key):
            try:
                path.unlink()
            except OSError:
                pass
        json_path = self._paths(key)[2]
        try:
            meta = json.loads(json_path.read_text())
            if isinstance(meta, dict) and meta.pop("native", None) is not None:
                self._atomic_write(json_path, json.dumps(meta, indent=2).encode())
        except (OSError, ValueError):
            pass

    # -- single-flight locks ---------------------------------------------------
    def try_lock_flight(self, key: str) -> Any:
        """Claim the cross-process build lock for *key*, or ``None`` if held.

        The lock is an exclusive :func:`fcntl.flock` on ``<key>.flight`` in
        the cache directory, so the kernel releases it automatically when the
        holder exits or is killed — a crashed worker can never wedge other
        processes.  Lock files are created once and never unlinked: removing
        a file another process still holds open would let a later opener
        acquire a *different* inode's lock and break mutual exclusion.

        Returns an opaque handle for :meth:`unlock_flight`.  On platforms
        without ``fcntl`` (or an unwritable cache directory) there is no
        cross-process exclusion and the caller proceeds as owner — the worst
        case is a duplicate lowering, never a deadlock.
        """
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            fd = os.open(str(self.dir / f"{key}.flight"), os.O_RDWR | os.O_CREAT, 0o644)
        except OSError:
            return "no-lock"
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            os.close(fd)
            return "no-lock"
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return None
        return fd

    def unlock_flight(self, handle: Any) -> None:
        """Release a handle from :meth:`try_lock_flight` (no-op for ``"no-lock"``)."""
        if not isinstance(handle, int):
            return
        try:
            fcntl.flock(handle, fcntl.LOCK_UN)
        except OSError:  # pragma: no cover - release is best-effort
            pass
        try:
            os.close(handle)
        except OSError:  # pragma: no cover
            pass

    def clear(self) -> None:
        if self.dir.is_dir():
            for path in self.dir.iterdir():
                if path.suffix == ".flight":
                    # Never unlink lock files: a concurrent holder's flock is
                    # tied to the inode, and recreating the path would let a
                    # second process believe it owns the same flight.
                    continue
                try:
                    path.unlink()
                except OSError:
                    pass

    def __repr__(self) -> str:
        return f"DiskKernelCache({str(self.root)!r}, entries={len(self)})"


@dataclass
class _DiskStats:
    hits: int = 0
    misses: int = 0
    errors: int = 0
    writes: int = 0


#: Sentinel: resolve the disk layer from the environment on first use.
_DISK_FROM_ENV = "auto"


class BuildFlight:
    """One claimed single-flight slot for a fingerprint (see ``begin_flight``).

    Exactly one of two states:

    * ``entry`` is set — another builder (a thread of this process, or a
      process sharing the disk cache) produced the entry while we waited;
      use it and skip lowering entirely.
    * ``entry`` is ``None`` (``owner`` is true) — the caller must lower the
      program, ``put()`` it into the cache and then call :meth:`done`;
      concurrent builders of the same fingerprint block until then.

    :meth:`done` must always run (``try``/``finally`` around the build): it
    wakes in-process waiters and releases the cross-process lock file.  It is
    idempotent, and a no-op for entry-carrying flights.
    """

    __slots__ = ("_cache", "key", "entry", "_event_held", "_disk_handle")

    def __init__(
        self,
        cache: "KernelCache",
        key: str,
        entry: Optional[CacheEntry] = None,
        event_held: bool = False,
        disk_handle: Any = None,
    ):
        self._cache = cache
        self.key = key
        self.entry = entry
        self._event_held = event_held
        self._disk_handle = disk_handle

    @property
    def owner(self) -> bool:
        """Whether the caller is responsible for lowering (no entry supplied)."""
        return self.entry is None

    def done(self) -> None:
        """Wake in-process waiters and release the cross-process lock."""
        if self._event_held:
            self._event_held = False
            self._cache._release_flight(self.key)
        if self._disk_handle is not None:
            handle, self._disk_handle = self._disk_handle, None
            disk = self._cache.disk
            if disk is not None:
                disk.unlock_flight(handle)

    def __enter__(self) -> "BuildFlight":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.done()

    def __repr__(self) -> str:
        state = "owner" if self.owner else "shared"
        return f"BuildFlight({self.key[:12]!r}..., {state})"


class KernelCache:
    """A thread-safe LRU cache from structural fingerprint to :class:`CacheEntry`.

    Entries hold the lowered stage-III program (plus its stage-II form, kept
    for scheduling introspection, and the emitted stage-IV source); value
    data is rebound per build, so one entry serves every workload that shares
    the structure.

    ``disk`` selects the persistent layer: the default ``"auto"`` resolves
    ``$REPRO_KERNEL_CACHE`` lazily on first use (no environment variable, no
    disk I/O); ``None``/``False`` disables it; a path or
    :class:`DiskKernelCache` enables it explicitly.  Disk lookups satisfy
    misses of the in-memory layer and promote the entry; every store is
    written through.
    """

    def __init__(self, capacity: int = 256, disk: Any = _DISK_FROM_ENV):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._disk = disk
        #: fingerprint -> event set when that fingerprint's flight completes.
        self._flights: Dict[str, threading.Event] = {}

    # -- persistent layer ------------------------------------------------------
    @property
    def disk(self) -> Optional[DiskKernelCache]:
        """The resolved persistent layer (may be ``None``)."""
        with self._lock:
            if self._disk == _DISK_FROM_ENV:
                self._disk = DiskKernelCache.from_env()
            elif self._disk is False:
                self._disk = None
            elif self._disk is not None and not isinstance(self._disk, DiskKernelCache):
                self._disk = DiskKernelCache(self._disk)
            return self._disk

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> Optional[CacheEntry]:
        """Look up one fingerprint in memory, then on disk; ``None`` on miss.

        The lock covers only the in-memory bookkeeping: disk reads (file I/O
        and unpickling) run outside it so a slow persistent layer never
        blocks other threads' memory hits.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
            disk = self.disk
            if disk is None:
                self.stats.misses += 1
                return None
        loaded = disk.get(key)
        with self._lock:
            self.stats.disk_errors = disk.stats.errors
            # Another thread may have stored the entry while we read disk;
            # prefer the shared one so its compiled runner is reused.
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
            if loaded is not None:
                self.stats.disk_hits += 1
                self.stats.hits += 1
                self._store(key, loaded)
                return loaded
            self.stats.disk_misses += 1
            self.stats.misses += 1
            return None

    def put(self, key: str, lowered: Any, stage2: Optional[PrimFunc] = None, source: Optional[str] = None) -> CacheEntry:
        """Insert an entry (a :class:`CacheEntry` or a lowered program).

        The disk write-through (pickling + atomic file writes) happens
        outside the lock; entries are immutable once built, so concurrent
        writers of the same key produce identical payloads.
        """
        entry = (
            lowered
            if isinstance(lowered, CacheEntry)
            else CacheEntry(lowered=lowered, stage2=stage2, source=source)
        )
        with self._lock:
            self._store(key, entry)
            disk = self.disk
        if disk is not None:
            disk.put(key, entry)
        return entry

    def _store(self, key: str, entry: CacheEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # -- single-flight ---------------------------------------------------------
    def begin_flight(self, key: str, timeout: Optional[float] = None) -> BuildFlight:
        """Claim the right to lower *key*, or wait for whoever already did.

        The cache-stampede guard: when N builders (threads of this process,
        or cold processes sharing the disk layer) race to build the same
        fingerprint, exactly one becomes the *owner* and performs the
        lowering; the rest block here and receive the finished
        :class:`CacheEntry` through ``flight.entry``.  Waiting is bounded by
        *timeout* (default ``$REPRO_FLIGHT_TIMEOUT`` or two minutes): a
        wedged owner degrades waiters to duplicate lowerings, never a
        deadlock.  Call on a cache **miss** only — this method deliberately
        does not touch the hit/miss counters, so one ``get()`` per build
        remains the accounting invariant.
        """
        if timeout is None:
            timeout = _flight_timeout()
        deadline = time.monotonic() + timeout
        # Phase 1: in-process arbitration.  One thread registers the event
        # and proceeds to phase 2; the rest block on it.
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.stats.flight_shared += 1
                    return BuildFlight(self, key, entry=entry)
                event = self._flights.get(key)
                if event is None:
                    self._flights[key] = threading.Event()
                    break
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not event.wait(timeout=remaining):
                with self._lock:
                    self.stats.flight_timeouts += 1
                    self.stats.flight_builds += 1
                return BuildFlight(self, key)
            # Event fired: loop to pick the entry up — or claim ownership if
            # the previous owner failed and left no entry behind.
        # Phase 2: cross-process arbitration through the disk layer.
        disk = self.disk
        if disk is None:
            with self._lock:
                self.stats.flight_builds += 1
            return BuildFlight(self, key, event_held=True)
        while True:
            handle = disk.try_lock_flight(key)
            if handle is not None:
                # Lock acquired (or no locking available): another process
                # may have finished while we contended — re-check disk once.
                loaded = disk.get(key)
                if loaded is not None:
                    disk.unlock_flight(handle)
                    entry = self._adopt(key, loaded, disk)
                    self._release_flight(key)
                    with self._lock:
                        self.stats.flight_shared += 1
                    return BuildFlight(self, key, entry=entry)
                with self._lock:
                    self.stats.flight_builds += 1
                return BuildFlight(self, key, event_held=True, disk_handle=handle)
            # Another process owns the flight: poll for its published entry.
            if time.monotonic() >= deadline:
                with self._lock:
                    self.stats.flight_timeouts += 1
                    self.stats.flight_builds += 1
                return BuildFlight(self, key, event_held=True)
            time.sleep(_FLIGHT_POLL_S)
            if key in disk:
                loaded = disk.get(key)
                if loaded is not None:
                    entry = self._adopt(key, loaded, disk)
                    self._release_flight(key)
                    with self._lock:
                        self.stats.flight_shared += 1
                    return BuildFlight(self, key, entry=entry)

    def _adopt(self, key: str, loaded: CacheEntry, disk: DiskKernelCache) -> CacheEntry:
        """Store a disk-loaded entry, preferring a concurrently stored one."""
        with self._lock:
            self.stats.disk_errors = disk.stats.errors
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                return entry
            self.stats.disk_hits += 1
            self._store(key, loaded)
            return loaded

    def _release_flight(self, key: str) -> None:
        """Drop the in-process flight registration and wake its waiters."""
        with self._lock:
            event = self._flights.pop(key, None)
        if event is not None:
            event.set()

    def clear(self) -> None:
        """Drop the in-memory entries and reset statistics (disk is kept)."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()


#: Process-wide cache used by ``build()`` unless a caller supplies its own.
_GLOBAL_CACHE = KernelCache()


def global_kernel_cache() -> KernelCache:
    """The process-wide kernel cache shared by default ``build()`` calls."""
    return _GLOBAL_CACHE


def resolve_cache(cache: Any) -> Optional[KernelCache]:
    """Normalise a ``cache`` argument: None -> global, False -> disabled."""
    if cache is None:
        return _GLOBAL_CACHE
    if cache is False:
        return None
    if isinstance(cache, KernelCache):
        return cache
    raise TypeError(f"cache must be a KernelCache, None or False, got {type(cache)}")
