"""Target-specific code generation (Section 3.5) and the stage-IV backend."""

from .build import Kernel, build
from .cuda_like import emit_cuda_source
from .emit_numpy import UnsupportedForEmission, emit_numpy_source
from .fusion import horizontal_fuse, launch_groups

__all__ = [
    "Kernel",
    "build",
    "emit_cuda_source",
    "emit_numpy_source",
    "UnsupportedForEmission",
    "horizontal_fuse",
    "launch_groups",
]
