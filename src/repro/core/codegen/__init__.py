"""Target-specific code generation (Section 3.5)."""

from .build import Kernel, build
from .cuda_like import emit_cuda_source
from .fusion import horizontal_fuse, launch_groups

__all__ = ["Kernel", "build", "emit_cuda_source", "horizontal_fuse", "launch_groups"]
