"""Building lowered programs into runnable kernels."""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

import numpy as np

from ..program import STAGE_COORDINATE, STAGE_LOOP, STAGE_POSITION, PrimFunc
from ..stage2.lowering import lower_sparse_iterations
from ..stage3.buffer_lowering import lower_sparse_buffers
from .cache import CacheEntry, KernelCache, resolve_cache, structural_fingerprint
from .cuda_like import emit_cuda_source
from .fusion import launch_count

#: Execution tiers of :meth:`Kernel.run`, fastest first.
ENGINES = ("native", "emitted", "vectorized", "interpret")


class Kernel:
    """A compiled sparse kernel.

    A kernel bundles the fully lowered (stage-III) program with

    * a NumPy runtime (:meth:`run`) with four dispatch tiers: the native
      compiled kernel (C source generated once per structure, compiled into
      a shared object and shared across processes through the disk cache),
      the emitted stage-IV NumPy kernel (source generated once per
      structure, plan executed once per process), the vectorized
      whole-array fast path, and the element-by-element interpreter — tried
      in that order under ``"auto"``, with automatic fallback whenever a
      tier rejects the program; every tier is bit-exact,
    * the emitted NumPy listing (:meth:`emitted_source`) and the pseudo-CUDA
      listing (:meth:`cuda_source`) produced by code generation, and
    * a hook for the GPU performance model (:meth:`profile`) which estimates
      execution time and memory behaviour on a simulated device.

    ``defaults`` carries the value arrays of the program the kernel was built
    from, keyed by buffer name.  They are merged under any explicit bindings
    at :meth:`run` time, which is what lets a structurally-cached kernel be
    reused across workloads that share a sparsity structure but differ in
    values.
    """

    def __init__(
        self,
        func: PrimFunc,
        stage2: Optional[PrimFunc] = None,
        defaults: Optional[Mapping[str, np.ndarray]] = None,
        entry: Optional[CacheEntry] = None,
        cache: Optional[KernelCache] = None,
        key: Optional[str] = None,
    ):
        if func.stage != STAGE_LOOP:
            raise ValueError("Kernel requires a stage-III program; use build()")
        self.func = func
        self.stage2 = stage2
        self.defaults: Dict[str, np.ndarray] = dict(defaults or {})
        self.last_engine: Optional[str] = None
        self._source: Optional[str] = None
        self._vectorized: Any = None  # lazily built; False marks "unsupported"
        # The cache entry shares the emitted source and its compiled runner
        # across every kernel built from the same structure; an uncached
        # kernel gets a private entry on first use.  ``cache``/``key`` give
        # the native tier access to the persistent artifact store (and the
        # native hit/rebuild counters); an uncached kernel compiles into a
        # process-local scratch directory instead.
        self._entry = entry
        self._cache = cache
        self._key = key
        self._aux_names = frozenset(buf.name for buf in func.aux_buffers)

    # -- execution ------------------------------------------------------------
    def run(
        self,
        bindings: Optional[Mapping[str, np.ndarray]] = None,
        engine: str = "auto",
    ) -> Dict[str, np.ndarray]:
        """Execute the kernel and return every buffer's flat array.

        ``engine`` selects the backend: ``"auto"`` (default) tries the
        native compiled kernel, then the emitted stage-IV NumPy kernel, then
        the vectorized fast path, then the interpreter, silently falling
        back whenever a tier does not support the program; ``"native"`` /
        ``"emitted"`` / ``"vectorized"`` require that tier (raising if it
        does not apply); ``"interpret"`` forces the scalar interpreter.
        ``last_engine`` records the tier that served the run.
        """
        from ...runtime.executor import Executor
        from ...runtime.vectorized import UnsupportedProgram, VectorizedExecutor

        merged: Dict[str, np.ndarray] = dict(self.defaults)
        if bindings:
            merged.update(bindings)

        if engine not in ("auto",) + ENGINES:
            raise ValueError(f"unknown engine {engine!r}")
        # The native and emitted plans bake the auxiliary (structural) arrays
        # in, so a binding that overrides one would be silently ignored; such
        # runs drop to the vectorized tier which reads them per call.
        aux_override = bindings and any(name in self._aux_names for name in bindings)
        if engine in ("auto", "native"):
            runner = None if aux_override else self._native_runner()
            if runner is not None:
                result = runner(self._prepare(merged))
                self.last_engine = "native"
                return result
            if engine == "native":
                raise UnsupportedProgram(
                    f"program {self.func.name!r} has no native kernel"
                    + (" (auxiliary buffers rebound)" if aux_override else "")
                )
        if engine in ("auto", "emitted"):
            runner = None if aux_override else self._emitted_runner()
            if runner is not None:
                result = runner(self._prepare(merged))
                self.last_engine = "emitted"
                return result
            if engine == "emitted":
                raise UnsupportedProgram(
                    f"program {self.func.name!r} has no emitted kernel"
                    + (" (auxiliary buffers rebound)" if aux_override else "")
                )
        if engine == "vectorized":
            # Strict: any rejection (at analysis or at run time) propagates.
            executor = (
                self._vectorized
                if isinstance(self._vectorized, VectorizedExecutor)
                else VectorizedExecutor(self.func)
            )
            self._vectorized = executor
            result = executor.run(merged)
            self.last_engine = "vectorized"
            return result
        if engine == "auto" and self._vectorized is not False:
            try:
                if self._vectorized is None:
                    self._vectorized = VectorizedExecutor(self.func)
                result = self._vectorized.run(merged)
                self.last_engine = "vectorized"
                return result
            except UnsupportedProgram:
                self._vectorized = False
        self.last_engine = "interpret"
        return Executor(self.func).run(merged)

    def _prepare(self, merged: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        from ...runtime.executor import prepare_arrays

        return prepare_arrays(self.func, merged)

    def _emitted_runner(self) -> Any:
        """The compiled stage-IV runner, or ``None`` when unavailable.

        Compilation happens at most once per cache entry (shared across every
        kernel with the same structure) and is serialised by the entry lock;
        a failed compile or plan (e.g. lane overflow) marks the entry so the
        fallback decision is also made once.
        """
        entry = self._entry
        if entry is None:
            entry = self._entry = CacheEntry(lowered=self.func, source=self._emit_source())
        if entry.source is None or entry.runner is False:
            return None
        if entry.runner is not None:
            return entry.runner
        with entry.lock:
            if entry.runner is None:
                from .emit_numpy import compile_emitted

                try:
                    entry.runner = compile_emitted(entry.source, self.func)
                except Exception:
                    entry.runner = False
        return entry.runner or None

    def _emit_source(self) -> Optional[str]:
        from .emit_numpy import UnsupportedForEmission, emit_numpy_source

        try:
            return emit_numpy_source(self.func)
        except UnsupportedForEmission:
            return None

    def _native_runner(self) -> Any:
        """The compiled native (C) runner, or ``None`` when unavailable.

        Mirrors :meth:`_emitted_runner`: built at most once per cache entry
        under the entry lock, with any failure — no toolchain, the program
        outside the C emitter's fragment, a compile or load error — marking
        the entry so the fallback to the emitted tier is decided once.
        """
        entry = self._entry
        if entry is None:
            entry = self._entry = CacheEntry(lowered=self.func, source=self._emit_source())
        if entry.native_runner is False:
            return None
        if entry.native_runner is not None:
            return entry.native_runner
        with entry.lock:
            if entry.native_runner is None:
                entry.native_runner = self._build_native(entry) or False
        return entry.native_runner or None

    def _build_native(self, entry: CacheEntry) -> Any:
        from .emit_c import emit_c_source, load_native, toolchain_available
        from .emit_numpy import UnsupportedForEmission

        if not toolchain_available():
            return None
        if entry.native is None:
            try:
                entry.native = emit_c_source(self.func)
            except UnsupportedForEmission:
                entry.native = False
        if entry.native is False:
            return None
        c_source, glue_source = entry.native
        disk = self._cache.disk if self._cache is not None else None
        stats = self._cache.stats if self._cache is not None else None
        try:
            return load_native(
                self.func, c_source, glue_source, disk=disk, key=self._key, stats=stats
            )
        except Exception:
            # Compile failure, artifact load failure, or a plan that
            # overflows the lane budget: the emitted tier takes over.
            return None

    def native_source(self) -> Optional[str]:
        """The C module emitted for this kernel's native tier (``None`` when
        the program falls outside the C emitter's fragment)."""
        from .emit_c import emit_c_source
        from .emit_numpy import UnsupportedForEmission

        entry = self._entry
        if entry is None:
            entry = self._entry = CacheEntry(lowered=self.func, source=self._emit_source())
        if entry.native is None:
            try:
                entry.native = emit_c_source(self.func)
            except UnsupportedForEmission:
                entry.native = False
        return entry.native[0] if entry.native else None

    # -- code generation ---------------------------------------------------------
    def emitted_source(self) -> Optional[str]:
        """The stage-IV NumPy module emitted for this kernel (``None`` when
        the program falls outside the emitter's fragment)."""
        if self._entry is None:
            self._entry = CacheEntry(lowered=self.func, source=self._emit_source())
        return self._entry.source

    def cuda_source(self) -> str:
        """The CUDA-like listing emitted for this kernel."""
        if self._source is None:
            self._source = emit_cuda_source(self.func)
        return self._source

    @property
    def num_launches(self) -> int:
        """Number of device kernel launches (1 after horizontal fusion)."""
        return launch_count(self.func)

    # -- performance ---------------------------------------------------------------
    def profile(self, device, **kwargs):
        """Estimate execution on a simulated device (see :mod:`repro.perf`)."""
        from ...perf.gpu_model import profile_kernel

        return profile_kernel(self, device, **kwargs)

    def __repr__(self) -> str:
        return f"Kernel({self.func.name!r}, launches={self.num_launches})"


def _collect_defaults(func: PrimFunc) -> Dict[str, np.ndarray]:
    return {
        buf.name: buf.data
        for buf in list(func.buffers) + list(func.aux_buffers)
        if buf.data is not None
    }


def _structural_copy(func: PrimFunc) -> PrimFunc:
    """A copy of a lowered program with the *value* buffers' data detached.

    Cached entries must be purely structural: value arrays are rebound from
    the requesting program at every build, so (a) a cache hit can never leak
    the first build's features/weights into a later run whose program left a
    buffer unbound, and (b) the cache does not pin large value arrays in
    memory for the process lifetime.  Auxiliary (indptr/indices) buffers keep
    their data — it is structural and already part of the fingerprint.
    """
    from ..buffers import SparseBuffer

    stripped = [
        SparseBuffer(buf.name, buf.axes, buf.dtype, buf.scope) for buf in func.buffers
    ]
    return PrimFunc(
        func.name,
        axes=list(func.axes),
        buffers=stripped,
        body=func.body,
        stage=func.stage,
        aux_buffers=list(func.aux_buffers),
        flat_buffers=list(func.flat_buffers),
        attrs=dict(func.attrs),
    )


def build(
    func: PrimFunc,
    horizontal_fusion: bool = True,
    cache: Optional[KernelCache] = None,
) -> Kernel:
    """Lower a program (from any stage) to stage III and wrap it in a Kernel.

    Args:
        func: The program to lower (stage I, II or III).
        horizontal_fusion: Apply the backend pass of Section 3.5 so that the
            per-format kernels produced by composable formats are launched as
            a single grid.
        cache: Structural kernel caching: ``None`` (default) uses the
            process-wide :func:`~repro.core.codegen.cache.global_kernel_cache`,
            a :class:`~repro.core.codegen.cache.KernelCache` instance uses
            that cache, and ``False`` disables caching.  On a cache hit —
            from memory, or from the persistent on-disk layer in a fresh
            process — lowering *and* stage-IV source emission are skipped
            entirely and the value arrays of *func* are attached to the
            cached loop nest as run-time defaults.

    Returns:
        A runnable :class:`Kernel` holding the stage-III program.
    """
    cache_obj = resolve_cache(cache)
    defaults = _collect_defaults(func)
    key: Optional[str] = None
    flight = None
    if cache_obj is not None:
        key = structural_fingerprint(func, {"horizontal_fusion": horizontal_fusion})
        entry = cache_obj.get(key)
        if entry is not None:
            return Kernel(
                entry.lowered,
                stage2=entry.stage2,
                defaults=defaults,
                entry=entry,
                cache=cache_obj,
                key=key,
            )
        # Cache miss: claim the single-flight slot, so concurrent builders of
        # the same structure — threads of this process, or cold processes
        # sharing the persistent layer — perform exactly one lowering.  A
        # waiter that receives the finished entry skips lowering entirely.
        flight = cache_obj.begin_flight(key)
        if flight.entry is not None:
            flight.done()
            entry = flight.entry
            return Kernel(
                entry.lowered,
                stage2=entry.stage2,
                defaults=defaults,
                entry=entry,
                cache=cache_obj,
                key=key,
            )

    try:
        stage2: Optional[PrimFunc] = None
        if func.stage == STAGE_COORDINATE:
            func = lower_sparse_iterations(func)
        if func.stage == STAGE_POSITION:
            stage2 = func
            func = lower_sparse_buffers(func)
        if func.stage != STAGE_LOOP:
            raise ValueError(f"cannot build program at stage {func.stage}")
        if horizontal_fusion:
            from .fusion import horizontal_fuse

            func = horizontal_fuse(func)
        # Aux buffers (indptr/indices) are materialised during lowering;
        # include their data so cache hits on later builds can rebind them.
        defaults.update(_collect_defaults(func))
        if cache_obj is None or key is None:
            return Kernel(func, stage2=stage2, defaults=defaults)

        from .emit_numpy import UnsupportedForEmission, emit_numpy_source

        func = _structural_copy(func)
        stage2 = None if stage2 is None else _structural_copy(stage2)
        cache_obj.stats.lowerings += 1
        try:
            source: Optional[str] = emit_numpy_source(func)
            cache_obj.stats.emissions += 1
        except UnsupportedForEmission:
            source = None
        entry = cache_obj.put(key, func, stage2=stage2, source=source)
        return Kernel(
            func, stage2=stage2, defaults=defaults, entry=entry, cache=cache_obj, key=key
        )
    finally:
        if flight is not None:
            flight.done()
