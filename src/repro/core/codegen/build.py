"""Building lowered programs into runnable kernels."""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..program import STAGE_COORDINATE, STAGE_LOOP, STAGE_POSITION, PrimFunc
from ..stage2.lowering import lower_sparse_iterations
from ..stage3.buffer_lowering import lower_sparse_buffers
from .cuda_like import emit_cuda_source
from .fusion import launch_count


class Kernel:
    """A compiled sparse kernel.

    A kernel bundles the fully lowered (stage-III) program with

    * a NumPy interpreter (:meth:`run`) used for numerical verification,
    * the pseudo-CUDA listing (:meth:`cuda_source`) produced by code
      generation, and
    * a hook for the GPU performance model (:meth:`profile`) which estimates
      execution time and memory behaviour on a simulated device.
    """

    def __init__(self, func: PrimFunc, stage2: Optional[PrimFunc] = None):
        if func.stage != STAGE_LOOP:
            raise ValueError("Kernel requires a stage-III program; use build()")
        self.func = func
        self.stage2 = stage2
        self._source: Optional[str] = None

    # -- execution ------------------------------------------------------------
    def run(self, bindings: Optional[Mapping[str, np.ndarray]] = None) -> Dict[str, np.ndarray]:
        """Interpret the kernel and return every buffer's flat array."""
        from ...runtime.executor import Executor

        return Executor(self.func).run(bindings)

    # -- code generation ---------------------------------------------------------
    def cuda_source(self) -> str:
        """The CUDA-like listing emitted for this kernel."""
        if self._source is None:
            self._source = emit_cuda_source(self.func)
        return self._source

    @property
    def num_launches(self) -> int:
        """Number of device kernel launches (1 after horizontal fusion)."""
        return launch_count(self.func)

    # -- performance ---------------------------------------------------------------
    def profile(self, device, **kwargs):
        """Estimate execution on a simulated device (see :mod:`repro.perf`)."""
        from ...perf.gpu_model import profile_kernel

        return profile_kernel(self, device, **kwargs)

    def __repr__(self) -> str:
        return f"Kernel({self.func.name!r}, launches={self.num_launches})"


def build(func: PrimFunc, horizontal_fusion: bool = True) -> Kernel:
    """Lower a program (from any stage) to stage III and wrap it in a Kernel.

    ``horizontal_fusion`` applies the backend pass of Section 3.5 so that the
    per-format kernels produced by composable formats are launched as a
    single grid.
    """
    stage2: Optional[PrimFunc] = None
    if func.stage == STAGE_COORDINATE:
        func = lower_sparse_iterations(func)
    if func.stage == STAGE_POSITION:
        stage2 = func
        func = lower_sparse_buffers(func)
    if func.stage != STAGE_LOOP:
        raise ValueError(f"cannot build program at stage {func.stage}")
    if horizontal_fusion:
        from .fusion import horizontal_fuse

        func = horizontal_fuse(func)
    return Kernel(func, stage2=stage2)
