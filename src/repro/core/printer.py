"""Readable text rendering of PrimFuncs at every stage."""

from __future__ import annotations

from typing import List

from .axes import Axis
from .program import PrimFunc
from .sparse_iteration import SparseIteration
from .stmt import (
    AssertStmt,
    Block,
    BufferStore,
    Evaluate,
    ForLoop,
    IfThenElse,
    LetStmt,
    SeqStmt,
    Stmt,
)

_INDENT = "    "


def primfunc_script(func: PrimFunc) -> str:
    """Render *func* as an indented, Python-like listing."""
    lines: List[str] = [f"# PrimFunc {func.name} ({func.stage})"]
    for axis in func.axes:
        lines.append(_axis_decl(axis))
    for buf in func.buffers:
        axes = ", ".join(a.name for a in buf.axes)
        lines.append(f"{buf.name} = match_sparse_buffer([{axes}], {buf.dtype!r})")
    for buf in func.aux_buffers:
        axes = ", ".join(a.name for a in buf.axes)
        lines.append(f"{buf.name} = match_sparse_buffer([{axes}], {buf.dtype!r})  # auxiliary")
    lines.extend(_stmt_lines(func.body, 0))
    return "\n".join(lines) + "\n"


def _axis_decl(axis: Axis) -> str:
    kind = ("dense" if axis.is_dense else "sparse") + "_" + ("fixed" if axis.is_fixed else "variable")
    parent = "" if axis.parent is None else f", parent={axis.parent.name}"
    return f"{axis.name} = {kind}(length={axis.length}{parent})"


def _stmt_lines(stmt: Stmt, depth: int) -> List[str]:
    pad = _INDENT * depth
    if isinstance(stmt, SeqStmt):
        lines: List[str] = []
        for s in stmt.stmts:
            lines.extend(_stmt_lines(s, depth))
        return lines
    if isinstance(stmt, SparseIteration):
        names = ", ".join(item.name for item in stmt.axes)
        lines = [f"{pad}with sp_iter([{names}], {stmt.kinds!r}, {stmt.name!r}):"]
        if stmt.init is not None:
            lines.append(f"{pad}{_INDENT}with init():")
            lines.extend(_stmt_lines(stmt.init, depth + 2))
        lines.extend(_stmt_lines(stmt.body, depth + 1))
        return lines
    if isinstance(stmt, ForLoop):
        header = f"{pad}for {stmt.loop_var!r} in range({stmt.start!r}, {stmt.start!r} + {stmt.extent!r})"
        if stmt.kind != "serial":
            header += f"  # {stmt.kind}" + (f" {stmt.thread_tag}" if stmt.thread_tag else "")
        return [header + ":"] + _stmt_lines(stmt.body, depth + 1)
    if isinstance(stmt, Block):
        lines = [f"{pad}with block({stmt.name!r}):"]
        if stmt.annotations:
            lines.append(f"{pad}{_INDENT}# annotations: {stmt.annotations}")
        if stmt.init is not None:
            lines.append(f"{pad}{_INDENT}with init():")
            lines.extend(_stmt_lines(stmt.init, depth + 2))
        lines.extend(_stmt_lines(stmt.body, depth + 1))
        return lines
    if isinstance(stmt, IfThenElse):
        lines = [f"{pad}if {stmt.condition!r}:"]
        lines.extend(_stmt_lines(stmt.then_case, depth + 1))
        if stmt.else_case is not None:
            lines.append(f"{pad}else:")
            lines.extend(_stmt_lines(stmt.else_case, depth + 1))
        return lines
    if isinstance(stmt, LetStmt):
        return [f"{pad}{stmt.var!r} = {stmt.value!r}"] + _stmt_lines(stmt.body, depth)
    if isinstance(stmt, AssertStmt):
        return [f"{pad}assert {stmt.condition!r}  # {stmt.message}"] + _stmt_lines(stmt.body, depth)
    if isinstance(stmt, (BufferStore, Evaluate)):
        return [f"{pad}{stmt!r}"]
    return [f"{pad}{stmt!r}"]
