"""Core SparseTIR abstraction: axes, sparse buffers, sparse iterations and the
three-stage compilation pipeline (coordinate space -> position space -> flat
loops), plus composable transformations at each stage."""

from .axes import (
    Axis,
    DenseFixedAxis,
    DenseVariableAxis,
    SparseFixedAxis,
    SparseVariableAxis,
    dense_fixed,
    dense_variable,
    sparse_fixed,
    sparse_variable,
)
from .buffers import FlatBuffer, SparseBuffer, match_sparse_buffer
from .codegen import Kernel, build
from .program import STAGE_COORDINATE, STAGE_LOOP, STAGE_POSITION, PrimFunc
from .script import ProgramBuilder
from .sparse_iteration import SparseIteration, fuse
from .stage1 import FormatRewriteRule, decompose_format, sparse_fuse, sparse_reorder
from .stage2 import Schedule, lower_sparse_iterations
from .stage3 import lower_sparse_buffers

__all__ = [
    "Axis",
    "DenseFixedAxis",
    "DenseVariableAxis",
    "SparseFixedAxis",
    "SparseVariableAxis",
    "dense_fixed",
    "dense_variable",
    "sparse_fixed",
    "sparse_variable",
    "SparseBuffer",
    "FlatBuffer",
    "match_sparse_buffer",
    "PrimFunc",
    "STAGE_COORDINATE",
    "STAGE_POSITION",
    "STAGE_LOOP",
    "ProgramBuilder",
    "SparseIteration",
    "fuse",
    "FormatRewriteRule",
    "decompose_format",
    "sparse_reorder",
    "sparse_fuse",
    "Schedule",
    "lower_sparse_iterations",
    "lower_sparse_buffers",
    "Kernel",
    "build",
]
