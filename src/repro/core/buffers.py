"""Sparse buffers: value storage decoupled from structural (axis) data.

A :class:`SparseBuffer` is described by an ordered list of axes (its format
specification) plus a value dtype.  The auxiliary arrays (``indptr`` /
``indices``) live on the axes, so two buffers that share a sparse layout also
share auxiliary data — exactly the decoupled storage shown in Figure 4 of the
paper.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

import numpy as np

from .axes import Axis, DenseFixedAxis
from .expr import BufferLoad, wrap


class SparseBuffer:
    """A multi-dimensional buffer whose dimensions are SparseTIR axes."""

    def __init__(
        self,
        name: str,
        axes: Sequence[Axis],
        dtype: str = "float32",
        scope: str = "global",
        data: Optional[np.ndarray] = None,
    ):
        if not axes:
            raise ValueError(f"buffer {name!r} must have at least one axis")
        self.name = name
        self.axes = tuple(axes)
        self.dtype = dtype
        self.scope = scope
        self.data = data

    # -- IR construction sugar ----------------------------------------------
    def __getitem__(self, indices: Any) -> BufferLoad:
        if not isinstance(indices, tuple):
            indices = (indices,)
        if len(indices) != len(self.axes):
            raise ValueError(
                f"buffer {self.name!r} has {len(self.axes)} axes but got "
                f"{len(indices)} indices"
            )
        return BufferLoad(self, [wrap(i) for i in indices])

    # -- storage ---------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.axes)

    def flat_size(self) -> int:
        """Total number of stored elements after flattening (equations 6-8)."""
        return _tree_nnz(self.axes)

    def shape_dense(self) -> Tuple[int, ...]:
        """The logical (uncompressed, coordinate-space) shape of the buffer."""
        return tuple(axis.length for axis in self.axes)

    def allocate(self, fill: float = 0.0) -> np.ndarray:
        """Allocate flat backing storage for the buffer and return it."""
        self.data = np.full(self.flat_size(), fill, dtype=_np_dtype(self.dtype))
        return self.data

    def bind(self, data: np.ndarray) -> "SparseBuffer":
        """Bind a flat value array to this buffer (checked for size)."""
        array = np.asarray(data, dtype=_np_dtype(self.dtype)).reshape(-1)
        expected = self.flat_size()
        if array.size != expected:
            raise ValueError(
                f"buffer {self.name!r} expects {expected} values, got {array.size}"
            )
        self.data = array
        return self

    def nbytes(self) -> int:
        """Size of the value storage in bytes."""
        return self.flat_size() * dtype_bytes(self.dtype)

    def is_dense(self) -> bool:
        return all(isinstance(axis, DenseFixedAxis) for axis in self.axes)

    def __repr__(self) -> str:
        axes = ", ".join(axis.name for axis in self.axes)
        return f"SparseBuffer({self.name!r}, [{axes}], {self.dtype!r}, scope={self.scope!r})"


class FlatBuffer:
    """A one-dimensional buffer produced by sparse buffer lowering (stage III)."""

    def __init__(self, name: str, size: int, dtype: str = "float32", scope: str = "global"):
        self.name = name
        self.size = int(size)
        self.dtype = dtype
        self.scope = scope

    def __getitem__(self, index: Any) -> BufferLoad:
        if isinstance(index, tuple):
            if len(index) != 1:
                raise ValueError(f"flat buffer {self.name!r} takes a single index")
            index = index[0]
        return BufferLoad(self, [wrap(index)])

    def nbytes(self) -> int:
        return self.size * dtype_bytes(self.dtype)

    def __repr__(self) -> str:
        return f"FlatBuffer({self.name!r}, size={self.size}, {self.dtype!r})"


def match_sparse_buffer(
    name: str, axes: Sequence[Axis], dtype: str = "float32", data: Optional[np.ndarray] = None
) -> SparseBuffer:
    """Create a sparse buffer bound to the given axes.

    Mirrors ``T.match_sparse_buffer`` from the paper's scripting interface.
    """
    buffer = SparseBuffer(name, axes, dtype)
    if data is not None:
        buffer.bind(data)
    return buffer


def _tree_nnz(axes: Sequence[Axis]) -> int:
    """Number of stored elements for a buffer composed of ``axes``.

    Implements ``nnz(Tree(axis))`` of equations (6)-(8).  Fixed axes multiply
    the running size by their per-row extent.  A variable axis replaces the
    contribution of its ancestor chain (the preceding axes it depends on) by
    its cumulative nnz count, because variable axes store one slot per actual
    non-zero rather than a rectangular product.
    """
    size = 1
    contributions: dict[int, int] = {}
    axes = list(axes)
    for axis in axes:
        if axis.is_fixed:
            factor = axis.length if axis.is_dense else axis.nnz_cols  # type: ignore[attr-defined]
            contributions[id(axis)] = factor
            size *= factor
            continue
        # Variable axis: divide out contributions of its ancestors that are
        # part of this buffer, then multiply by the cumulative nnz.
        ancestor_product = 1
        for ancestor in axis.ancestors()[:-1]:
            if id(ancestor) in contributions:
                ancestor_product *= contributions[id(ancestor)]
        nnz = axis.nnz_total()
        if ancestor_product and size % ancestor_product == 0:
            size = size // ancestor_product * nnz
        else:
            size = size * nnz // max(ancestor_product, 1)
        contributions[id(axis)] = nnz // max(ancestor_product, 1) if ancestor_product else nnz
        # Record the effective multiplicative contribution of the whole chain
        # so deeper variable descendants can divide it out again.
        contributions[id(axis)] = nnz
        for ancestor in axis.ancestors()[:-1]:
            contributions.pop(id(ancestor), None)
    return size


def dtype_bytes(dtype: str) -> int:
    """Number of bytes per element for a dtype string."""
    table = {
        "float64": 8,
        "float32": 4,
        "float16": 2,
        "bfloat16": 2,
        "int64": 8,
        "int32": 4,
        "int16": 2,
        "int8": 1,
        "uint8": 1,
        "bool": 1,
    }
    if dtype not in table:
        raise ValueError(f"unknown dtype {dtype!r}")
    return table[dtype]


def _np_dtype(dtype: str) -> np.dtype:
    mapping = {
        "float64": np.float64,
        "float32": np.float32,
        "float16": np.float16,
        "bfloat16": np.float32,  # numpy has no bfloat16; float32 preserves values
        "int64": np.int64,
        "int32": np.int32,
        "int16": np.int16,
        "int8": np.int8,
        "uint8": np.uint8,
        "bool": np.bool_,
    }
    if dtype not in mapping:
        raise ValueError(f"unknown dtype {dtype!r}")
    return np.dtype(mapping[dtype])
