"""Sparse buffer lowering: stage II (position space) to stage III (flat loops).

Implements Section 3.4.1 of the paper: all axes disappear, every
multi-dimensional sparse buffer becomes a one-dimensional flat buffer, and
each access is rewritten to a flat offset following equations (6)-(8).

The flattening walks the buffer's axes left to right and accumulates an
offset expression:

* a fixed axis (dense-fixed or sparse-fixed) multiplies the running offset by
  its per-row extent and adds the position index;
* a variable axis (dense-variable or sparse-variable) replaces the running
  offset — which at that point equals its parent's position — by
  ``indptr[offset] + position``.

This matches the paper's example: ``A[i, j]`` becomes ``A[J_indptr[i] + j]``
and ``C[i, k]`` becomes ``C[i * feat_size + k]``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..axes import Axis, DenseFixedAxis, DenseVariableAxis, SparseFixedAxis, SparseVariableAxis
from ..buffers import FlatBuffer, SparseBuffer
from ..expr import Add, BinaryOp, BufferLoad, Call, Cast, Expr, IntImm, Mul, Not, Select, simplify
from ..program import STAGE_LOOP, STAGE_POSITION, PrimFunc
from ..stmt import (
    AssertStmt,
    Block,
    BufferRegion,
    BufferStore,
    Evaluate,
    ForLoop,
    IfThenElse,
    LetStmt,
    SeqStmt,
    Stmt,
)


class _Flattener:
    """Holds the sparse-to-flat buffer mapping for one program."""

    def __init__(self, func: PrimFunc):
        self.func = func
        self.flat: Dict[str, FlatBuffer] = {}
        self.aux_indptr_flat: Dict[int, FlatBuffer] = {}
        for buffer in list(func.buffers) + list(func.aux_buffers):
            flat = FlatBuffer(buffer.name, buffer.flat_size(), buffer.dtype, buffer.scope)
            self.flat[buffer.name] = flat
        # Map axis id -> flat indptr buffer, used while flattening accesses to
        # buffers that contain a variable axis.
        for buffer in func.aux_buffers:
            if buffer.name.endswith("_indptr"):
                axis_name = buffer.name[: -len("_indptr")]
                for axis in func.axes:
                    if axis.name == axis_name:
                        self.aux_indptr_flat[id(axis)] = self.flat[buffer.name]

    # -- expression / statement rewriting -------------------------------------
    def flatten_stmt(self, stmt: Stmt) -> Stmt:
        if isinstance(stmt, SeqStmt):
            return SeqStmt([self.flatten_stmt(s) for s in stmt.stmts])
        if isinstance(stmt, ForLoop):
            return ForLoop(
                stmt.loop_var,
                self.flatten_expr(stmt.start),
                self.flatten_expr(stmt.extent),
                self.flatten_stmt(stmt.body),
                kind=stmt.kind,
                thread_tag=stmt.thread_tag,
                annotations=dict(stmt.annotations),
            )
        if isinstance(stmt, Block):
            new = stmt.with_body(self.flatten_stmt(stmt.body))
            if stmt.init is not None:
                new.init = self.flatten_stmt(stmt.init)
            new.reads = [self._flatten_region(r) for r in stmt.reads]
            new.writes = [self._flatten_region(r) for r in stmt.writes]
            return new
        if isinstance(stmt, BufferStore):
            index = self.flatten_access(stmt.buffer, stmt.indices)
            return BufferStore(self._flat_of(stmt.buffer), [index], self.flatten_expr(stmt.value))
        if isinstance(stmt, IfThenElse):
            return IfThenElse(
                self.flatten_expr(stmt.condition),
                self.flatten_stmt(stmt.then_case),
                None if stmt.else_case is None else self.flatten_stmt(stmt.else_case),
            )
        if isinstance(stmt, Evaluate):
            return Evaluate(self.flatten_expr(stmt.value))
        if isinstance(stmt, LetStmt):
            return LetStmt(stmt.var, self.flatten_expr(stmt.value), self.flatten_stmt(stmt.body))
        if isinstance(stmt, AssertStmt):
            return AssertStmt(self.flatten_expr(stmt.condition), stmt.message, self.flatten_stmt(stmt.body))
        return stmt

    def flatten_expr(self, expr: Expr) -> Expr:
        if isinstance(expr, BufferLoad):
            index = self.flatten_access(expr.buffer, expr.indices)
            return BufferLoad(self._flat_of(expr.buffer), [index])
        if isinstance(expr, BinaryOp):
            return type(expr)(self.flatten_expr(expr.a), self.flatten_expr(expr.b))
        if isinstance(expr, Not):
            return Not(self.flatten_expr(expr.a))
        if isinstance(expr, Select):
            return Select(
                self.flatten_expr(expr.condition),
                self.flatten_expr(expr.true_value),
                self.flatten_expr(expr.false_value),
            )
        if isinstance(expr, Cast):
            return Cast(self.flatten_expr(expr.value), expr.dtype)
        if isinstance(expr, Call):
            return Call(expr.func, [self.flatten_expr(a) for a in expr.args], expr.dtype)
        return expr

    def flatten_access(self, buffer, indices: Sequence[Expr]) -> Expr:
        """Compute the flat offset of a position-space access (equations 6-8).

        A variable axis compresses the rectangular space spanned by its parent
        chain into ``nnz_total()`` slots, addressed through ``indptr``.  Axes
        *before* the parent (e.g. the head axis of a batched attention buffer
        ``S[H, I, J]``) form an independent batch prefix: one full segment of
        ``nnz_total()`` slots per prefix position, so the offset becomes
        ``prefix * nnz_total + indptr[parent] + position``.
        """
        if isinstance(buffer, FlatBuffer):
            return self.flatten_expr(indices[0])
        if not isinstance(buffer, SparseBuffer):
            raise TypeError(f"cannot flatten access to {buffer!r}")
        offset: Optional[Expr] = None
        # (axis, flattened index, running offset *before* this axis) for every
        # axis already folded into `offset`; lets a later variable axis find
        # its parent's own position and the batch prefix preceding it.
        processed: list[tuple[Axis, Expr, Optional[Expr]]] = []
        for axis, raw_index in zip(buffer.axes, indices):
            index = self.flatten_expr(raw_index)
            offset_before = offset
            if isinstance(axis, (DenseFixedAxis,)):
                extent: Optional[int] = axis.length
                offset = index if offset is None else Add(Mul(offset, IntImm(extent)), index)
            elif isinstance(axis, SparseFixedAxis):
                extent = axis.nnz_cols
                offset = index if offset is None else Add(Mul(offset, IntImm(extent)), index)
            elif isinstance(axis, (DenseVariableAxis, SparseVariableAxis)):
                indptr_flat = self.aux_indptr_flat.get(id(axis))
                if indptr_flat is None:
                    # The axis has no materialised indptr buffer (e.g. the
                    # access happens inside an auxiliary buffer that shares
                    # the parent's indptr); fall back to the dense-variable
                    # flattening through the shared indptr of the axis itself.
                    indptr_flat = self._materialize_indptr(axis)
                parent_pos: Optional[Expr] = None
                prefix: Optional[Expr] = None
                for depth, (p_axis, p_index, p_before) in enumerate(processed):
                    if p_axis is axis.parent:
                        if depth != len(processed) - 1:
                            # An axis sitting *between* the parent and its
                            # variable child has no flattening rule (it would
                            # need one indptr segment per interior position);
                            # refuse rather than compute colliding offsets.
                            raise ValueError(
                                f"buffer {buffer.name!r}: axis "
                                f"{processed[depth + 1][0].name!r} appears between "
                                f"variable axis {axis.name!r} and its parent "
                                f"{p_axis.name!r}; reorder the buffer axes so the "
                                f"parent immediately precedes the variable axis"
                            )
                        parent_pos = p_index
                        prefix = p_before
                        break
                if parent_pos is None:
                    parent_pos = offset if offset is not None else IntImm(0)
                segment = Add(BufferLoad(indptr_flat, [parent_pos]), index)
                if prefix is None:
                    offset = segment
                else:
                    offset = Add(Mul(prefix, IntImm(axis.nnz_total())), segment)
            else:  # pragma: no cover
                raise TypeError(f"unsupported axis type {type(axis)}")
            processed.append((axis, index, offset_before))
        if offset is None:
            raise ValueError(f"buffer {buffer.name!r} access with no indices")
        return simplify(offset)

    def _materialize_indptr(self, axis: Axis) -> FlatBuffer:
        """Create (once) a flat indptr buffer for an axis discovered late."""
        name = f"{axis.name}_indptr"
        if name in self.flat:
            self.aux_indptr_flat[id(axis)] = self.flat[name]
            return self.flat[name]
        size = (axis.parent.length if axis.parent is not None else 0) + 1
        flat = FlatBuffer(name, size, "int32")
        self.flat[name] = flat
        self.aux_indptr_flat[id(axis)] = flat
        # Register a backing sparse buffer so the runtime can bind data.
        indptr_dim = DenseFixedAxis(f"{axis.name}_indptr_dim", size)
        backing = SparseBuffer(name, [indptr_dim], dtype="int32")
        if getattr(axis, "indptr", None) is not None:
            backing.bind(axis.indptr)
        self.func.aux_buffers.append(backing)
        return flat

    def _flat_of(self, buffer) -> FlatBuffer:
        if isinstance(buffer, FlatBuffer):
            return buffer
        return self.flat[buffer.name]

    def _flatten_region(self, region: BufferRegion) -> BufferRegion:
        try:
            index = self.flatten_access(region.buffer, region.indices)
        except Exception:
            return region
        return BufferRegion(self._flat_of(region.buffer), [index])


def lower_sparse_buffers(func: PrimFunc) -> PrimFunc:
    """Lower a stage-II program to stage III by flattening all sparse buffers."""
    if func.stage != STAGE_POSITION:
        raise ValueError(f"lower_sparse_buffers expects a stage-II program, got {func.stage}")
    flattener = _Flattener(func)
    body = flattener.flatten_stmt(func.body)
    lowered = PrimFunc(
        func.name,
        axes=list(func.axes),
        buffers=list(func.buffers),
        body=body,
        stage=STAGE_LOOP,
        aux_buffers=list(func.aux_buffers),
        flat_buffers=list(flattener.flat.values()),
        attrs=dict(func.attrs),
    )
    return lowered
