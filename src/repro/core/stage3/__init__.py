"""Stage-III (loop-level) IR: sparse buffer lowering to flat storage."""

from .buffer_lowering import lower_sparse_buffers

__all__ = ["lower_sparse_buffers"]
