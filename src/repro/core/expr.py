"""Expression nodes of the SparseTIR-style intermediate representation.

The same expression language is shared by all three IR stages described in
the paper (coordinate-space, position-space and the loop-level stage).  The
nodes form a small, immutable AST; transformations build new trees instead
of mutating existing ones.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Mapping, Sequence, Tuple


class Expr:
    """Base class of every expression node."""

    dtype: str = "float32"

    # -- operator sugar ---------------------------------------------------
    def __add__(self, other: Any) -> "Expr":
        return Add(self, wrap(other))

    def __radd__(self, other: Any) -> "Expr":
        return Add(wrap(other), self)

    def __sub__(self, other: Any) -> "Expr":
        return Sub(self, wrap(other))

    def __rsub__(self, other: Any) -> "Expr":
        return Sub(wrap(other), self)

    def __mul__(self, other: Any) -> "Expr":
        return Mul(self, wrap(other))

    def __rmul__(self, other: Any) -> "Expr":
        return Mul(wrap(other), self)

    def __truediv__(self, other: Any) -> "Expr":
        return Div(self, wrap(other))

    def __rtruediv__(self, other: Any) -> "Expr":
        return Div(wrap(other), self)

    def __floordiv__(self, other: Any) -> "Expr":
        return FloorDiv(self, wrap(other))

    def __rfloordiv__(self, other: Any) -> "Expr":
        return FloorDiv(wrap(other), self)

    def __mod__(self, other: Any) -> "Expr":
        return FloorMod(self, wrap(other))

    def __rmod__(self, other: Any) -> "Expr":
        return FloorMod(wrap(other), self)

    def __neg__(self) -> "Expr":
        return Sub(IntImm(0) if self.dtype.startswith("int") else FloatImm(0.0), self)

    # Comparisons intentionally return expression nodes, so ``a < b`` can be
    # used inside IR conditions.  Equality of nodes is structural and exposed
    # through :func:`structural_equal` instead of ``==``.
    def __lt__(self, other: Any) -> "Expr":
        return LT(self, wrap(other))

    def __le__(self, other: Any) -> "Expr":
        return LE(self, wrap(other))

    def __gt__(self, other: Any) -> "Expr":
        return GT(self, wrap(other))

    def __ge__(self, other: Any) -> "Expr":
        return GE(self, wrap(other))

    def equal(self, other: Any) -> "Expr":
        return EQ(self, wrap(other))

    def not_equal(self, other: Any) -> "Expr":
        return NE(self, wrap(other))


def wrap(value: Any) -> Expr:
    """Wrap a Python scalar into an immediate expression node."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return IntImm(int(value), dtype="bool")
    if isinstance(value, int):
        return IntImm(value)
    if isinstance(value, float):
        return FloatImm(value)
    raise TypeError(f"cannot convert {value!r} of type {type(value)} to an Expr")


@dataclass(frozen=True)
class Var(Expr):
    """A scalar variable (loop iterator, function parameter or symbol)."""

    name: str
    dtype: str = "int32"

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:  # identity hashing: two vars with the same
        return id(self)         # name are distinct unless the same object.

    def __eq__(self, other: object) -> bool:
        return self is other


@dataclass(frozen=True)
class IntImm(Expr):
    """Integer immediate."""

    value: int
    dtype: str = "int32"

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class FloatImm(Expr):
    """Floating point immediate."""

    value: float
    dtype: str = "float32"

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class StringImm(Expr):
    """String immediate, used for intrinsic arguments and annotations."""

    value: str
    dtype: str = "handle"

    def __repr__(self) -> str:
        return repr(self.value)


class BinaryOp(Expr):
    """Base class for binary arithmetic and comparison operations."""

    op_name: str = "?"
    py_op: Callable[[Any, Any], Any] = operator.add

    def __init__(self, a: Expr, b: Expr):
        self.a = wrap(a)
        self.b = wrap(b)
        self.dtype = self._result_dtype()

    def _result_dtype(self) -> str:
        if "float" in self.a.dtype or "float" in self.b.dtype:
            return "float32"
        return self.a.dtype

    def __repr__(self) -> str:
        return f"({self.a!r} {self.op_name} {self.b!r})"


class Add(BinaryOp):
    op_name = "+"
    py_op = operator.add


class Sub(BinaryOp):
    op_name = "-"
    py_op = operator.sub


class Mul(BinaryOp):
    op_name = "*"
    py_op = operator.mul


class Div(BinaryOp):
    op_name = "/"
    py_op = operator.truediv


class FloorDiv(BinaryOp):
    op_name = "//"
    py_op = operator.floordiv


class FloorMod(BinaryOp):
    op_name = "%"
    py_op = operator.mod


class Min(BinaryOp):
    op_name = "min"
    py_op = min

    def __repr__(self) -> str:
        return f"min({self.a!r}, {self.b!r})"


class Max(BinaryOp):
    op_name = "max"
    py_op = max

    def __repr__(self) -> str:
        return f"max({self.a!r}, {self.b!r})"


class CompareOp(BinaryOp):
    def _result_dtype(self) -> str:
        return "bool"


class LT(CompareOp):
    op_name = "<"
    py_op = operator.lt


class LE(CompareOp):
    op_name = "<="
    py_op = operator.le


class GT(CompareOp):
    op_name = ">"
    py_op = operator.gt


class GE(CompareOp):
    op_name = ">="
    py_op = operator.ge


class EQ(CompareOp):
    op_name = "=="
    py_op = operator.eq


class NE(CompareOp):
    op_name = "!="
    py_op = operator.ne


class And(CompareOp):
    op_name = "and"
    py_op = lambda a, b: bool(a) and bool(b)  # noqa: E731


class Or(CompareOp):
    op_name = "or"
    py_op = lambda a, b: bool(a) or bool(b)  # noqa: E731


class Not(Expr):
    """Logical negation."""

    def __init__(self, a: Expr):
        self.a = wrap(a)
        self.dtype = "bool"

    def __repr__(self) -> str:
        return f"(not {self.a!r})"


class Select(Expr):
    """Ternary select: ``condition ? true_value : false_value``."""

    def __init__(self, condition: Expr, true_value: Expr, false_value: Expr):
        self.condition = wrap(condition)
        self.true_value = wrap(true_value)
        self.false_value = wrap(false_value)
        self.dtype = self.true_value.dtype

    def __repr__(self) -> str:
        return f"select({self.condition!r}, {self.true_value!r}, {self.false_value!r})"


class Cast(Expr):
    """Explicit dtype conversion."""

    def __init__(self, value: Expr, dtype: str):
        self.value = wrap(value)
        self.dtype = dtype

    def __repr__(self) -> str:
        return f"cast[{self.dtype}]({self.value!r})"


class Call(Expr):
    """Call to a named intrinsic (``binary_search``, ``mma_sync``, ...)."""

    def __init__(self, func: str, args: Sequence[Expr], dtype: str = "int32"):
        self.func = func
        self.args = tuple(wrap(a) for a in args)
        self.dtype = dtype

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"{self.func}({args})"


class BufferLoad(Expr):
    """Read one element of a (sparse or flat) buffer.

    At stage I the indices are coordinate-space expressions; after sparse
    iteration lowering they are position-space expressions; after sparse
    buffer lowering a single flat index remains.
    """

    def __init__(self, buffer: Any, indices: Sequence[Expr]):
        self.buffer = buffer
        self.indices = tuple(wrap(i) for i in indices)
        self.dtype = getattr(buffer, "dtype", "float32")

    def __repr__(self) -> str:
        idx = ", ".join(repr(i) for i in self.indices)
        return f"{self.buffer.name}[{idx}]"


# ---------------------------------------------------------------------------
# Functional helpers over expression trees
# ---------------------------------------------------------------------------

def children(expr: Expr) -> Tuple[Expr, ...]:
    """Return the direct sub-expressions of *expr*."""
    if isinstance(expr, BinaryOp):
        return (expr.a, expr.b)
    if isinstance(expr, Not):
        return (expr.a,)
    if isinstance(expr, Select):
        return (expr.condition, expr.true_value, expr.false_value)
    if isinstance(expr, Cast):
        return (expr.value,)
    if isinstance(expr, Call):
        return expr.args
    if isinstance(expr, BufferLoad):
        return expr.indices
    return ()


def post_order(expr: Expr) -> Iterable[Expr]:
    """Yield every node of the expression tree, children before parents."""
    for child in children(expr):
        yield from post_order(child)
    yield expr


def collect_vars(expr: Expr) -> Tuple[Var, ...]:
    """Return the variables appearing in *expr* (deduplicated, in order)."""
    seen: Dict[int, Var] = {}
    for node in post_order(expr):
        if isinstance(node, Var) and id(node) not in seen:
            seen[id(node)] = node
    return tuple(seen.values())


def substitute(expr: Expr, mapping: Mapping[Var, Expr]) -> Expr:
    """Return a copy of *expr* with variables replaced according to *mapping*."""
    if isinstance(expr, Var):
        return mapping.get(expr, expr)
    if isinstance(expr, (IntImm, FloatImm, StringImm)):
        return expr
    if isinstance(expr, BinaryOp):
        return type(expr)(substitute(expr.a, mapping), substitute(expr.b, mapping))
    if isinstance(expr, Not):
        return Not(substitute(expr.a, mapping))
    if isinstance(expr, Select):
        return Select(
            substitute(expr.condition, mapping),
            substitute(expr.true_value, mapping),
            substitute(expr.false_value, mapping),
        )
    if isinstance(expr, Cast):
        return Cast(substitute(expr.value, mapping), expr.dtype)
    if isinstance(expr, Call):
        return Call(expr.func, [substitute(a, mapping) for a in expr.args], expr.dtype)
    if isinstance(expr, BufferLoad):
        return BufferLoad(expr.buffer, [substitute(i, mapping) for i in expr.indices])
    raise TypeError(f"unsupported expression node {type(expr)}")


def structural_equal(a: Expr, b: Expr) -> bool:
    """Structural equality of two expression trees.

    Variables compare by identity (the same ``Var`` object), immediates by
    value, and composite nodes recursively.
    """
    if isinstance(a, Var) or isinstance(b, Var):
        return a is b
    if type(a) is not type(b):
        return False
    if isinstance(a, (IntImm, FloatImm, StringImm)):
        return a.value == b.value
    if isinstance(a, BufferLoad):
        if a.buffer is not b.buffer or len(a.indices) != len(b.indices):
            return False
        return all(structural_equal(x, y) for x, y in zip(a.indices, b.indices))
    if isinstance(a, Call):
        if a.func != b.func or len(a.args) != len(b.args):
            return False
        return all(structural_equal(x, y) for x, y in zip(a.args, b.args))
    kids_a, kids_b = children(a), children(b)
    if len(kids_a) != len(kids_b):
        return False
    return all(structural_equal(x, y) for x, y in zip(kids_a, kids_b))


def simplify(expr: Expr) -> Expr:
    """Constant-fold and apply trivial algebraic identities.

    This keeps the lowered IR readable (e.g. ``i * 1 + 0`` becomes ``i``) and
    speeds up interpretation a little; it is not a general simplifier.
    """
    if isinstance(expr, BinaryOp):
        a = simplify(expr.a)
        b = simplify(expr.b)
        if isinstance(a, (IntImm, FloatImm)) and isinstance(b, (IntImm, FloatImm)):
            value = type(expr).py_op(a.value, b.value)
            if isinstance(expr, CompareOp):
                return IntImm(int(value), dtype="bool")
            if isinstance(value, float) or "float" in expr.dtype:
                return FloatImm(float(value))
            return IntImm(int(value))
        if isinstance(expr, Add):
            if isinstance(a, IntImm) and a.value == 0:
                return b
            if isinstance(b, IntImm) and b.value == 0:
                return a
            if isinstance(a, FloatImm) and a.value == 0.0:
                return b
            if isinstance(b, FloatImm) and b.value == 0.0:
                return a
        if isinstance(expr, Sub) and isinstance(b, IntImm) and b.value == 0:
            return a
        if isinstance(expr, Mul):
            for x, y in ((a, b), (b, a)):
                if isinstance(x, IntImm) and x.value == 1:
                    return y
                if isinstance(x, IntImm) and x.value == 0:
                    return IntImm(0)
                if isinstance(x, FloatImm) and x.value == 1.0:
                    return y
        if isinstance(expr, (FloorDiv, Div)) and isinstance(b, IntImm) and b.value == 1:
            return a
        if isinstance(expr, FloorMod) and isinstance(b, IntImm) and b.value == 1:
            return IntImm(0)
        return type(expr)(a, b)
    if isinstance(expr, Select):
        cond = simplify(expr.condition)
        if isinstance(cond, IntImm):
            return simplify(expr.true_value if cond.value else expr.false_value)
        return Select(cond, simplify(expr.true_value), simplify(expr.false_value))
    if isinstance(expr, Cast):
        return Cast(simplify(expr.value), expr.dtype)
    if isinstance(expr, Call):
        return Call(expr.func, [simplify(a) for a in expr.args], expr.dtype)
    if isinstance(expr, BufferLoad):
        return BufferLoad(expr.buffer, [simplify(i) for i in expr.indices])
    if isinstance(expr, Not):
        a = simplify(expr.a)
        if isinstance(a, IntImm):
            return IntImm(int(not a.value), dtype="bool")
        return Not(a)
    return expr
