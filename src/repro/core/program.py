"""PrimFunc: the container for a SparseTIR program at any stage."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .axes import Axis
from .buffers import FlatBuffer, SparseBuffer
from .sparse_iteration import SparseIteration
from .stmt import Block, ForLoop, SeqStmt, Stmt, find_blocks, find_loops, post_order_stmts

STAGE_COORDINATE = "stage-I"
STAGE_POSITION = "stage-II"
STAGE_LOOP = "stage-III"


class PrimFunc:
    """A single sparse tensor program.

    The ``stage`` attribute records which IR stage the body is in; composable
    transformations never change the stage, only the two lowering passes do
    (Figure 2 of the paper).
    """

    def __init__(
        self,
        name: str,
        axes: Sequence[Axis],
        buffers: Sequence[SparseBuffer],
        body: Stmt,
        stage: str = STAGE_COORDINATE,
        aux_buffers: Optional[Sequence[SparseBuffer]] = None,
        flat_buffers: Optional[Sequence[FlatBuffer]] = None,
        attrs: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        self.axes: List[Axis] = list(axes)
        self.buffers: List[SparseBuffer] = list(buffers)
        self.aux_buffers: List[SparseBuffer] = list(aux_buffers or [])
        self.flat_buffers: List[FlatBuffer] = list(flat_buffers or [])
        self.body = body
        self.stage = stage
        self.attrs: Dict[str, object] = dict(attrs or {})

    # -- lookups ---------------------------------------------------------------
    def axis(self, name: str) -> Axis:
        for axis in self.axes:
            if axis.name == name:
                return axis
        raise KeyError(f"no axis named {name!r} in {self.name!r}")

    def buffer(self, name: str) -> SparseBuffer:
        for buf in self.buffers + self.aux_buffers:
            if buf.name == name:
                return buf
        raise KeyError(f"no buffer named {name!r} in {self.name!r}")

    def has_buffer(self, name: str) -> bool:
        return any(buf.name == name for buf in self.buffers + self.aux_buffers)

    def sparse_iterations(self) -> List[SparseIteration]:
        """All sparse iterations of a stage-I program, in program order."""
        return [s for s in post_order_stmts(self.body) if isinstance(s, SparseIteration)]

    def sparse_iteration(self, name: str) -> SparseIteration:
        for it in self.sparse_iterations():
            if it.name == name:
                return it
        raise KeyError(f"no sparse iteration named {name!r} in {self.name!r}")

    def blocks(self) -> List[Block]:
        """All blocks of a stage-II / stage-III program."""
        return find_blocks(self.body)

    def block(self, name: str) -> Block:
        for blk in self.blocks():
            if blk.name == name:
                return blk
        raise KeyError(f"no block named {name!r} in {self.name!r}")

    def loops(self) -> List[ForLoop]:
        return find_loops(self.body)

    # -- rewriting ---------------------------------------------------------------
    def with_body(self, body: Stmt, stage: Optional[str] = None) -> "PrimFunc":
        func = PrimFunc(
            self.name,
            list(self.axes),
            list(self.buffers),
            body,
            stage=stage or self.stage,
            aux_buffers=list(self.aux_buffers),
            flat_buffers=list(self.flat_buffers),
            attrs=dict(self.attrs),
        )
        return func

    def add_axis(self, axis: Axis) -> None:
        if not any(existing is axis for existing in self.axes):
            self.axes.append(axis)

    def add_buffer(self, buffer: SparseBuffer) -> None:
        if not any(existing is buffer for existing in self.buffers):
            self.buffers.append(buffer)

    def replace_sparse_iteration(self, old: SparseIteration, new: Stmt) -> "PrimFunc":
        """Return a new PrimFunc with *old* replaced by *new* in the body."""
        return self.with_body(_replace(self.body, old, new))

    def __repr__(self) -> str:
        return f"PrimFunc({self.name!r}, stage={self.stage!r})"

    def script(self) -> str:
        """Render a readable, Python-like listing of the program."""
        from .printer import primfunc_script

        return primfunc_script(self)


def _replace(stmt: Stmt, old: Stmt, new: Stmt) -> Stmt:
    if stmt is old:
        return new
    if isinstance(stmt, SeqStmt):
        return SeqStmt([_replace(s, old, new) for s in stmt.stmts])
    if isinstance(stmt, ForLoop):
        return stmt.with_body(_replace(stmt.body, old, new))
    if isinstance(stmt, Block):
        return stmt.with_body(_replace(stmt.body, old, new))
    return stmt
