"""Axis abstractions: the building blocks of composable sparse formats.

Section 3.1 of the paper defines an *axis* as a data structure with two
orthogonal attributes:

* ``dense`` / ``sparse`` — whether the coordinates of non-zero elements along
  the axis are contiguous;
* ``fixed`` / ``variable`` — whether the number of non-zero elements along
  the axis is the same for every parent position.

Variable axes carry an ``indptr`` array; sparse axes carry an ``indices``
array.  Every axis except a dense-fixed one has a ``parent`` axis.  Axes hold
the auxiliary (structural) data, while :class:`~repro.core.buffers.SparseBuffer`
holds only values, so several buffers may share one structure.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


class Axis:
    """Base class of the four axis kinds."""

    is_dense: bool = True
    is_fixed: bool = True

    def __init__(self, name: str, length: int, idtype: str = "int32"):
        if length < 0:
            raise ValueError(f"axis {name!r}: length must be non-negative, got {length}")
        self.name = name
        self.length = int(length)
        self.idtype = idtype
        self.parent: Optional[Axis] = None

    # -- structural queries -------------------------------------------------
    @property
    def is_sparse(self) -> bool:
        return not self.is_dense

    @property
    def is_variable(self) -> bool:
        return not self.is_fixed

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def ancestors(self) -> List["Axis"]:
        """Return the chain of ancestor axes from the root down to ``self``.

        This is the ``anc`` function of equation (5) in the paper, including
        the axis itself.
        """
        chain: List[Axis] = []
        axis: Optional[Axis] = self
        while axis is not None:
            chain.append(axis)
            axis = axis.parent
        chain.reverse()
        return chain

    def depth(self) -> int:
        """Number of ancestors above this axis (root has depth 0)."""
        return len(self.ancestors()) - 1

    # -- runtime structure --------------------------------------------------
    def nnz_total(self) -> int:
        """Total number of (padded) positions in the iteration space rooted
        at the parent chain and ending at this axis."""
        raise NotImplementedError

    def row_extent(self, parent_position: int) -> int:
        """Number of positions along this axis for a given parent position."""
        raise NotImplementedError

    def row_start(self, parent_position: int) -> int:
        """Offset of the first position of the given parent row in the
        flattened position space of this axis."""
        raise NotImplementedError

    def position_to_coordinate(self, parent_position: int, position: int) -> int:
        """Decompress a position into a coordinate (equation 3)."""
        raise NotImplementedError

    def coordinate_to_position(self, parent_position: int, coordinate: int) -> int:
        """Compress a coordinate into a position (equation 4).

        Returns ``-1`` when the coordinate is not present (the element is a
        structural zero).
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        kind = ("dense" if self.is_dense else "sparse") + "_" + (
            "fixed" if self.is_fixed else "variable"
        )
        return f"{kind}({self.name!r}, length={self.length})"


class DenseFixedAxis(Axis):
    """A dense axis with a fixed extent; the root of every axis tree."""

    is_dense = True
    is_fixed = True

    def nnz_total(self) -> int:
        return self.length

    def row_extent(self, parent_position: int) -> int:
        return self.length

    def row_start(self, parent_position: int) -> int:
        return parent_position * self.length

    def position_to_coordinate(self, parent_position: int, position: int) -> int:
        return position

    def coordinate_to_position(self, parent_position: int, coordinate: int) -> int:
        if 0 <= coordinate < self.length:
            return coordinate
        return -1


class DenseVariableAxis(Axis):
    """A dense axis whose extent varies per parent row (ragged dimension)."""

    is_dense = True
    is_fixed = False

    def __init__(
        self,
        name: str,
        parent: Axis,
        length: int,
        nnz: int,
        indptr: Optional[np.ndarray] = None,
        idtype: str = "int32",
    ):
        super().__init__(name, length, idtype)
        self.parent = parent
        self.nnz = int(nnz)
        self.indptr = None if indptr is None else np.asarray(indptr, dtype=np.int64)
        _validate_indptr(self.indptr, self.name)

    def nnz_total(self) -> int:
        return self.nnz

    def row_extent(self, parent_position: int) -> int:
        self._require_data()
        return int(self.indptr[parent_position + 1] - self.indptr[parent_position])

    def row_start(self, parent_position: int) -> int:
        self._require_data()
        return int(self.indptr[parent_position])

    def position_to_coordinate(self, parent_position: int, position: int) -> int:
        return position

    def coordinate_to_position(self, parent_position: int, coordinate: int) -> int:
        if 0 <= coordinate < self.row_extent(parent_position):
            return coordinate
        return -1

    def _require_data(self) -> None:
        if self.indptr is None:
            raise ValueError(f"axis {self.name!r} has no indptr array bound")


class SparseFixedAxis(Axis):
    """A sparse axis with a fixed number of non-zeros per parent row (ELL)."""

    is_dense = False
    is_fixed = True

    def __init__(
        self,
        name: str,
        parent: Axis,
        length: int,
        nnz_cols: int,
        indices: Optional[np.ndarray] = None,
        idtype: str = "int32",
    ):
        super().__init__(name, length, idtype)
        self.parent = parent
        self.nnz_cols = int(nnz_cols)
        self.indices = None if indices is None else np.asarray(indices, dtype=np.int64)

    def nnz_total(self) -> int:
        return self.parent.nnz_total() * self.nnz_cols

    def row_extent(self, parent_position: int) -> int:
        return self.nnz_cols

    def row_start(self, parent_position: int) -> int:
        return parent_position * self.nnz_cols

    def position_to_coordinate(self, parent_position: int, position: int) -> int:
        self._require_data()
        return int(self.indices[parent_position * self.nnz_cols + position])

    def coordinate_to_position(self, parent_position: int, coordinate: int) -> int:
        self._require_data()
        row = self.indices[
            parent_position * self.nnz_cols : (parent_position + 1) * self.nnz_cols
        ]
        hit = np.searchsorted(row, coordinate)
        if hit < len(row) and row[hit] == coordinate:
            return int(hit)
        return -1

    def _require_data(self) -> None:
        if self.indices is None:
            raise ValueError(f"axis {self.name!r} has no indices array bound")


class SparseVariableAxis(Axis):
    """A sparse axis with a variable number of non-zeros per parent row (CSR)."""

    is_dense = False
    is_fixed = False

    def __init__(
        self,
        name: str,
        parent: Axis,
        length: int,
        nnz: int,
        indptr: Optional[np.ndarray] = None,
        indices: Optional[np.ndarray] = None,
        idtype: str = "int32",
    ):
        super().__init__(name, length, idtype)
        self.parent = parent
        self.nnz = int(nnz)
        self.indptr = None if indptr is None else np.asarray(indptr, dtype=np.int64)
        self.indices = None if indices is None else np.asarray(indices, dtype=np.int64)
        _validate_indptr(self.indptr, self.name)
        if self.indptr is not None and self.indices is not None:
            if int(self.indptr[-1]) != len(self.indices):
                raise ValueError(
                    f"axis {name!r}: indptr[-1]={int(self.indptr[-1])} does not match "
                    f"len(indices)={len(self.indices)}"
                )

    def nnz_total(self) -> int:
        return self.nnz

    def row_extent(self, parent_position: int) -> int:
        self._require_data()
        return int(self.indptr[parent_position + 1] - self.indptr[parent_position])

    def row_start(self, parent_position: int) -> int:
        self._require_data()
        return int(self.indptr[parent_position])

    def position_to_coordinate(self, parent_position: int, position: int) -> int:
        self._require_data()
        return int(self.indices[self.indptr[parent_position] + position])

    def coordinate_to_position(self, parent_position: int, coordinate: int) -> int:
        self._require_data()
        start = int(self.indptr[parent_position])
        end = int(self.indptr[parent_position + 1])
        row = self.indices[start:end]
        hit = np.searchsorted(row, coordinate)
        if hit < len(row) and row[hit] == coordinate:
            return int(hit)
        return -1

    def _require_data(self) -> None:
        if self.indptr is None or self.indices is None:
            raise ValueError(f"axis {self.name!r} has no indptr/indices arrays bound")


def _validate_indptr(indptr: Optional[np.ndarray], name: str) -> None:
    if indptr is None:
        return
    if indptr.ndim != 1 or len(indptr) == 0:
        raise ValueError(f"axis {name!r}: indptr must be a non-empty 1-D array")
    if int(indptr[0]) != 0:
        raise ValueError(f"axis {name!r}: indptr must start at 0")
    if np.any(np.diff(indptr) < 0):
        raise ValueError(f"axis {name!r}: indptr must be non-decreasing")


# ---------------------------------------------------------------------------
# Convenience constructors mirroring the paper's scripting API
# ---------------------------------------------------------------------------

def dense_fixed(name: str, length: int, idtype: str = "int32") -> DenseFixedAxis:
    """Create a dense-fixed axis (``T.dense_fixed`` in the paper)."""
    return DenseFixedAxis(name, length, idtype)


def dense_variable(
    name: str,
    parent: Axis,
    length: int,
    nnz: int,
    indptr: Optional[np.ndarray] = None,
    idtype: str = "int32",
) -> DenseVariableAxis:
    """Create a dense-variable (ragged) axis."""
    return DenseVariableAxis(name, parent, length, nnz, indptr, idtype)


def sparse_fixed(
    name: str,
    parent: Axis,
    length: int,
    nnz_cols: int,
    indices: Optional[np.ndarray] = None,
    idtype: str = "int32",
) -> SparseFixedAxis:
    """Create a sparse-fixed axis (ELL-style)."""
    return SparseFixedAxis(name, parent, length, nnz_cols, indices, idtype)


def sparse_variable(
    name: str,
    parent: Axis,
    length: int,
    nnz: int,
    indptr: Optional[np.ndarray] = None,
    indices: Optional[np.ndarray] = None,
    idtype: str = "int32",
) -> SparseVariableAxis:
    """Create a sparse-variable axis (CSR-style)."""
    return SparseVariableAxis(name, parent, length, nnz, indptr, indices, idtype)
