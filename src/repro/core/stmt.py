"""Statement nodes of the SparseTIR-style intermediate representation.

Stage I programs contain :class:`SparseIteration` nodes (defined in
``sparse_iteration.py``); stage II and III programs contain :class:`ForLoop`
and :class:`Block` nodes.  All of them derive from :class:`Stmt` and live in
the same tree type so that composable transformations can be expressed as
tree-to-tree rewrites.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .expr import BufferLoad, Expr, Var, substitute, wrap


class Stmt:
    """Base class of every statement node."""


class BufferStore(Stmt):
    """Store ``value`` into ``buffer[indices]``."""

    def __init__(self, buffer: Any, indices: Sequence[Expr], value: Expr):
        self.buffer = buffer
        self.indices = tuple(wrap(i) for i in indices)
        self.value = wrap(value)

    def __repr__(self) -> str:
        idx = ", ".join(repr(i) for i in self.indices)
        return f"{self.buffer.name}[{idx}] = {self.value!r}"


class Evaluate(Stmt):
    """Evaluate an expression for its side effect (intrinsic calls)."""

    def __init__(self, value: Expr):
        self.value = wrap(value)

    def __repr__(self) -> str:
        return f"eval({self.value!r})"


class SeqStmt(Stmt):
    """A sequence of statements executed in order."""

    def __init__(self, stmts: Sequence[Stmt]):
        flat: List[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, SeqStmt):
                flat.extend(stmt.stmts)
            else:
                flat.append(stmt)
        self.stmts = tuple(flat)

    def __repr__(self) -> str:
        return "; ".join(repr(s) for s in self.stmts)


class IfThenElse(Stmt):
    """Conditional statement."""

    def __init__(self, condition: Expr, then_case: Stmt, else_case: Optional[Stmt] = None):
        self.condition = wrap(condition)
        self.then_case = then_case
        self.else_case = else_case

    def __repr__(self) -> str:
        text = f"if {self.condition!r}: {self.then_case!r}"
        if self.else_case is not None:
            text += f" else: {self.else_case!r}"
        return text


class LetStmt(Stmt):
    """Bind ``var`` to ``value`` inside ``body``."""

    def __init__(self, var: Var, value: Expr, body: Stmt):
        self.var = var
        self.value = wrap(value)
        self.body = body

    def __repr__(self) -> str:
        return f"let {self.var!r} = {self.value!r} in {self.body!r}"


class AssertStmt(Stmt):
    """Runtime assertion carried through lowering (buffer domain hints)."""

    def __init__(self, condition: Expr, message: str, body: Stmt):
        self.condition = wrap(condition)
        self.message = message
        self.body = body

    def __repr__(self) -> str:
        return f"assert {self.condition!r}, {self.message!r}; {self.body!r}"


# Loop kinds used by stage II / III schedules.
LOOP_SERIAL = "serial"
LOOP_PARALLEL = "parallel"
LOOP_VECTORIZED = "vectorized"
LOOP_UNROLLED = "unrolled"
LOOP_THREAD_BINDING = "thread_binding"

THREAD_TAGS = (
    "blockIdx.x",
    "blockIdx.y",
    "blockIdx.z",
    "threadIdx.x",
    "threadIdx.y",
    "threadIdx.z",
    "vthread",
)


class ForLoop(Stmt):
    """A loop over ``[start, start + extent)`` in position space."""

    def __init__(
        self,
        loop_var: Var,
        start: Expr,
        extent: Expr,
        body: Stmt,
        kind: str = LOOP_SERIAL,
        thread_tag: Optional[str] = None,
        annotations: Optional[Dict[str, Any]] = None,
    ):
        self.loop_var = loop_var
        self.start = wrap(start)
        self.extent = wrap(extent)
        self.body = body
        self.kind = kind
        self.thread_tag = thread_tag
        self.annotations = dict(annotations or {})

    def with_body(self, body: Stmt) -> "ForLoop":
        return ForLoop(
            self.loop_var,
            self.start,
            self.extent,
            body,
            kind=self.kind,
            thread_tag=self.thread_tag,
            annotations=dict(self.annotations),
        )

    def __repr__(self) -> str:
        head = f"for {self.loop_var!r} in range({self.start!r}, {self.start!r} + {self.extent!r})"
        if self.kind != LOOP_SERIAL:
            tag = f" [{self.kind}"
            if self.thread_tag:
                tag += f":{self.thread_tag}"
            tag += "]"
            head += tag
        return head + f": {self.body!r}"


class BufferRegion:
    """A (buffer, per-dimension index expression) pair used by blocks."""

    def __init__(self, buffer: Any, indices: Sequence[Expr]):
        self.buffer = buffer
        self.indices = tuple(wrap(i) for i in indices)

    def __repr__(self) -> str:
        idx = ", ".join(repr(i) for i in self.indices)
        return f"{self.buffer.name}[{idx}]"


class Block(Stmt):
    """A TensorIR-style block: an isolation boundary for scheduling.

    Blocks carry the read/write regions computed by the region-analysis step
    of sparse iteration lowering (Section 3.3.1 of the paper), an optional
    reduction-init statement, and free-form annotations used by stage II
    schedules (cache stages, tensorization, rfactor, ...).
    """

    def __init__(
        self,
        name: str,
        body: Stmt,
        init: Optional[Stmt] = None,
        reads: Optional[Sequence[BufferRegion]] = None,
        writes: Optional[Sequence[BufferRegion]] = None,
        annotations: Optional[Dict[str, Any]] = None,
        iter_vars: Optional[Sequence[Var]] = None,
        iter_kinds: Optional[Sequence[str]] = None,
    ):
        self.name = name
        self.body = body
        self.init = init
        self.reads = list(reads or [])
        self.writes = list(writes or [])
        self.annotations = dict(annotations or {})
        self.iter_vars = list(iter_vars or [])
        self.iter_kinds = list(iter_kinds or [])

    def with_body(self, body: Stmt) -> "Block":
        block = Block(
            self.name,
            body,
            init=self.init,
            reads=list(self.reads),
            writes=list(self.writes),
            annotations=dict(self.annotations),
            iter_vars=list(self.iter_vars),
            iter_kinds=list(self.iter_kinds),
        )
        return block

    def __repr__(self) -> str:
        return f"block({self.name!r}): {self.body!r}"


# ---------------------------------------------------------------------------
# Tree helpers
# ---------------------------------------------------------------------------

def child_stmts(stmt: Stmt) -> Tuple[Stmt, ...]:
    """Return the direct child statements of *stmt*."""
    if isinstance(stmt, SeqStmt):
        return stmt.stmts
    if isinstance(stmt, ForLoop):
        return (stmt.body,)
    if isinstance(stmt, Block):
        return (stmt.body,) if stmt.init is None else (stmt.init, stmt.body)
    if isinstance(stmt, IfThenElse):
        return (stmt.then_case,) if stmt.else_case is None else (stmt.then_case, stmt.else_case)
    if isinstance(stmt, (LetStmt, AssertStmt)):
        return (stmt.body,)
    return ()


def post_order_stmts(stmt: Stmt) -> Iterable[Stmt]:
    """Yield every statement in the tree, children before parents."""
    for child in child_stmts(stmt):
        yield from post_order_stmts(child)
    yield stmt


def find_blocks(stmt: Stmt) -> List[Block]:
    """Collect every :class:`Block` in the tree, in post order."""
    return [s for s in post_order_stmts(stmt) if isinstance(s, Block)]


def find_loops(stmt: Stmt) -> List[ForLoop]:
    """Collect every :class:`ForLoop` in the tree, in post order."""
    return [s for s in post_order_stmts(stmt) if isinstance(s, ForLoop)]


def substitute_stmt(stmt: Stmt, mapping: Mapping[Var, Expr]) -> Stmt:
    """Substitute variables inside a statement tree."""
    if isinstance(stmt, BufferStore):
        return BufferStore(
            stmt.buffer,
            [substitute(i, mapping) for i in stmt.indices],
            substitute(stmt.value, mapping),
        )
    if isinstance(stmt, Evaluate):
        return Evaluate(substitute(stmt.value, mapping))
    if isinstance(stmt, SeqStmt):
        return SeqStmt([substitute_stmt(s, mapping) for s in stmt.stmts])
    if isinstance(stmt, IfThenElse):
        return IfThenElse(
            substitute(stmt.condition, mapping),
            substitute_stmt(stmt.then_case, mapping),
            None if stmt.else_case is None else substitute_stmt(stmt.else_case, mapping),
        )
    if isinstance(stmt, LetStmt):
        return LetStmt(stmt.var, substitute(stmt.value, mapping), substitute_stmt(stmt.body, mapping))
    if isinstance(stmt, AssertStmt):
        return AssertStmt(
            substitute(stmt.condition, mapping), stmt.message, substitute_stmt(stmt.body, mapping)
        )
    if isinstance(stmt, ForLoop):
        return ForLoop(
            stmt.loop_var,
            substitute(stmt.start, mapping),
            substitute(stmt.extent, mapping),
            substitute_stmt(stmt.body, mapping),
            kind=stmt.kind,
            thread_tag=stmt.thread_tag,
            annotations=dict(stmt.annotations),
        )
    if isinstance(stmt, Block):
        new = stmt.with_body(substitute_stmt(stmt.body, mapping))
        if stmt.init is not None:
            new.init = substitute_stmt(stmt.init, mapping)
        new.reads = [BufferRegion(r.buffer, [substitute(i, mapping) for i in r.indices]) for r in stmt.reads]
        new.writes = [BufferRegion(r.buffer, [substitute(i, mapping) for i in r.indices]) for r in stmt.writes]
        return new
    # SparseIteration handles its own substitution; anything else is a leaf.
    return stmt


def collect_buffer_loads(node: Any) -> List[BufferLoad]:
    """Collect every :class:`BufferLoad` reachable from a statement tree."""
    from .expr import post_order

    loads: List[BufferLoad] = []

    def visit_expr(expr: Expr) -> None:
        for sub in post_order(expr):
            if isinstance(sub, BufferLoad):
                loads.append(sub)

    for stmt in post_order_stmts(node):
        if isinstance(stmt, BufferStore):
            visit_expr(stmt.value)
            for i in stmt.indices:
                visit_expr(i)
        elif isinstance(stmt, Evaluate):
            visit_expr(stmt.value)
        elif isinstance(stmt, IfThenElse):
            visit_expr(stmt.condition)
        elif isinstance(stmt, (LetStmt, AssertStmt)):
            visit_expr(stmt.value if isinstance(stmt, LetStmt) else stmt.condition)
        elif isinstance(stmt, ForLoop):
            visit_expr(stmt.start)
            visit_expr(stmt.extent)
    return loads


def collect_buffer_stores(node: Stmt) -> List[BufferStore]:
    """Collect every :class:`BufferStore` in a statement tree."""
    return [s for s in post_order_stmts(node) if isinstance(s, BufferStore)]
