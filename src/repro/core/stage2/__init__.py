"""Stage-II (position space) IR: sparse iteration lowering and loop-level schedules."""

from .lowering import lower_sparse_iterations
from .schedule import Schedule

__all__ = ["lower_sparse_iterations", "Schedule"]
