"""Stage-II schedule primitives (Section 3.3.2).

The :class:`Schedule` object wraps a stage-II (or stage-III) PrimFunc and
exposes the loop/data transformations the paper relies on: ``split``,
``fuse``, ``reorder``, ``bind``, ``unroll``, ``vectorize``, ``parallel``,
``cache_read``, ``cache_write``, ``rfactor`` and ``tensorize``.

Loop restructuring primitives (split/fuse/reorder/bind/...) genuinely rewrite
the loop tree.  Data-movement and rewriting primitives that do not change the
computed values (``cache_read``, ``cache_write``, ``rfactor``, ``tensorize``)
are recorded as block/loop annotations: the NumPy interpreter ignores them
(they are semantics-preserving by construction) while the GPU performance
model uses them to account for shared-memory staging, register caching,
two-stage reductions and tensor-core execution.  This keeps numerical
execution exact while modelling the performance effects the paper studies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..expr import Add, Expr, FloorDiv, FloorMod, IntImm, LT, Mul, Var, simplify
from ..program import PrimFunc, STAGE_LOOP, STAGE_POSITION
from ..stmt import (
    LOOP_PARALLEL,
    LOOP_THREAD_BINDING,
    LOOP_UNROLLED,
    LOOP_VECTORIZED,
    THREAD_TAGS,
    Block,
    ForLoop,
    IfThenElse,
    SeqStmt,
    Stmt,
    substitute_stmt,
)


class ScheduleError(RuntimeError):
    """Raised when a schedule primitive is applied illegally."""


class Schedule:
    """A mutable scheduling session over one PrimFunc."""

    def __init__(self, func: PrimFunc):
        if func.stage not in (STAGE_POSITION, STAGE_LOOP):
            raise ScheduleError(
                f"Schedule operates on stage-II/III programs, got {func.stage}"
            )
        self._func = func
        self.trace: List[Tuple[str, tuple]] = []

    # -- access -----------------------------------------------------------------
    @property
    def func(self) -> PrimFunc:
        """The current (scheduled) program."""
        return self._func

    def get_block(self, name: str) -> Block:
        return self._func.block(name)

    def blocks(self) -> List[Block]:
        return self._func.blocks()

    def get_loops(self, block: Union[str, Block]) -> List[ForLoop]:
        """Loops enclosing *block*, outermost first."""
        if isinstance(block, str):
            block = self.get_block(block)
        path = _path_to(self._func.body, block)
        if path is None:
            raise ScheduleError(f"block {block.name!r} not found")
        return [node for node in path if isinstance(node, ForLoop)]

    def get_loop(self, block: Union[str, Block], var_name: str) -> ForLoop:
        for loop in self.get_loops(block):
            if loop.loop_var.name == var_name:
                return loop
        raise ScheduleError(f"no loop named {var_name!r} around block")

    # -- loop transformations -----------------------------------------------------
    def split(self, loop: ForLoop, factor: int) -> Tuple[ForLoop, ForLoop]:
        """Split *loop* into (outer, inner) where the inner extent is *factor*."""
        if factor <= 0:
            raise ScheduleError("split factor must be positive")
        loop = self._reacquire(loop.loop_var)
        outer_var = Var(loop.loop_var.name + "_o", "int32")
        inner_var = Var(loop.loop_var.name + "_i", "int32")
        recomposed = Add(Mul(outer_var, IntImm(factor)), inner_var)
        new_index = simplify(Add(loop.start, recomposed))
        body = substitute_stmt(loop.body, {loop.loop_var: new_index})

        exact = isinstance(loop.extent, IntImm) and loop.extent.value % factor == 0
        if isinstance(loop.extent, IntImm):
            outer_extent: Expr = IntImm((loop.extent.value + factor - 1) // factor)
        else:
            outer_extent = simplify(FloorDiv(Add(loop.extent, IntImm(factor - 1)), IntImm(factor)))
        if not exact:
            body = IfThenElse(LT(recomposed, loop.extent), body)

        inner = ForLoop(inner_var, IntImm(0), IntImm(factor), body, kind=loop.kind)
        outer = ForLoop(
            outer_var, IntImm(0), outer_extent, inner,
            kind=loop.kind, thread_tag=loop.thread_tag, annotations=dict(loop.annotations),
        )
        self._replace(loop, outer)
        self.trace.append(("split", (loop.loop_var.name, factor)))
        return self._reacquire(outer_var), self._reacquire(inner_var)

    def fuse(self, outer: ForLoop, inner: ForLoop) -> ForLoop:
        """Fuse two perfectly nested loops into one."""
        outer = self._reacquire(outer.loop_var)
        if outer.body is not inner and not (
            isinstance(outer.body, ForLoop) and outer.body.loop_var is inner.loop_var
        ):
            raise ScheduleError("fuse requires perfectly nested loops")
        inner = outer.body  # type: ignore[assignment]
        if not isinstance(inner, ForLoop):
            raise ScheduleError("fuse requires perfectly nested loops")
        fused_var = Var(f"{outer.loop_var.name}_{inner.loop_var.name}_f", "int32")
        mapping = {
            outer.loop_var: simplify(Add(outer.start, FloorDiv(fused_var, inner.extent))),
            inner.loop_var: simplify(Add(inner.start, FloorMod(fused_var, inner.extent))),
        }
        body = substitute_stmt(inner.body, mapping)
        fused = ForLoop(
            fused_var, IntImm(0), simplify(Mul(outer.extent, inner.extent)), body,
            kind=outer.kind, thread_tag=outer.thread_tag,
        )
        self._replace(outer, fused)
        self.trace.append(("fuse", (outer.loop_var.name, inner.loop_var.name)))
        return self._reacquire(fused_var)

    def reorder(self, *loops: ForLoop) -> None:
        """Reorder perfectly nested consecutive loops into the given order."""
        if len(loops) < 2:
            return
        loops = tuple(self._reacquire(l.loop_var) for l in loops)
        wanted = {id(l) for l in loops}
        # The requested loops must currently form a perfectly nested chain
        # with no block boundary in between (blocks forbid cross-block
        # reordering, Section 3.3.1 step 2).
        current_chain = _loop_chain(self._func.body, wanted)
        if current_chain is None:
            raise ScheduleError("reorder requires perfectly nested loops")
        innermost_body = current_chain[-1].body
        new_nest: Stmt = innermost_body
        for loop in reversed(loops):
            new_nest = loop.with_body(new_nest)
        self._replace(current_chain[0], new_nest)
        self.trace.append(("reorder", tuple(l.loop_var.name for l in loops)))

    # -- loop annotations -----------------------------------------------------------
    def bind(self, loop: ForLoop, thread_tag: str) -> ForLoop:
        """Bind a loop to a GPU thread axis (``blockIdx.x``, ``threadIdx.x``, ...)."""
        if thread_tag not in THREAD_TAGS:
            raise ScheduleError(f"unknown thread tag {thread_tag!r}")
        return self._set_kind(loop, LOOP_THREAD_BINDING, thread_tag)

    def unroll(self, loop: ForLoop) -> ForLoop:
        return self._set_kind(loop, LOOP_UNROLLED)

    def vectorize(self, loop: ForLoop) -> ForLoop:
        return self._set_kind(loop, LOOP_VECTORIZED)

    def parallel(self, loop: ForLoop) -> ForLoop:
        return self._set_kind(loop, LOOP_PARALLEL)

    def annotate(self, loop_or_block: Union[ForLoop, Block], key: str, value: object) -> None:
        if isinstance(loop_or_block, ForLoop):
            node = self._reacquire(loop_or_block.loop_var)
        else:
            node = self.get_block(loop_or_block.name)
        node.annotations[key] = value
        self.trace.append(("annotate", (key, value)))

    def _set_kind(self, loop: ForLoop, kind: str, thread_tag: Optional[str] = None) -> ForLoop:
        loop = self._reacquire(loop.loop_var)
        new = ForLoop(loop.loop_var, loop.start, loop.extent, loop.body,
                      kind=kind, thread_tag=thread_tag, annotations=dict(loop.annotations))
        self._replace(loop, new)
        self.trace.append((kind, (loop.loop_var.name, thread_tag)))
        return self._reacquire(loop.loop_var)

    # -- data movement / rewriting annotations ---------------------------------------
    def cache_read(self, block: Union[str, Block], buffer_name: str, scope: str = "shared") -> None:
        """Stage reads of *buffer_name* through on-chip memory (``shared``/``local``)."""
        self._cache(block, buffer_name, scope, "cache_read")

    def cache_write(self, block: Union[str, Block], buffer_name: str, scope: str = "local") -> None:
        """Accumulate writes of *buffer_name* in on-chip memory before spilling."""
        self._cache(block, buffer_name, scope, "cache_write")

    def _cache(self, block: Union[str, Block], buffer_name: str, scope: str, key: str) -> None:
        if scope not in ("shared", "local", "wmma.accumulator", "wmma.matrix_a", "wmma.matrix_b"):
            raise ScheduleError(f"unknown memory scope {scope!r}")
        blk = self.get_block(block) if isinstance(block, str) else self.get_block(block.name)
        known = {b.name for b in self._func.buffers + self._func.aux_buffers}
        if buffer_name not in known:
            raise ScheduleError(f"unknown buffer {buffer_name!r}")
        blk.annotations.setdefault(key, []).append({"buffer": buffer_name, "scope": scope})
        self.trace.append((key, (blk.name, buffer_name, scope)))

    def rfactor(self, block: Union[str, Block], factor: int) -> None:
        """Two-stage (factored) reduction, as used for SDDMM (PRedS-style)."""
        if factor <= 0:
            raise ScheduleError("rfactor factor must be positive")
        blk = self.get_block(block) if isinstance(block, str) else self.get_block(block.name)
        blk.annotations["rfactor"] = {"factor": factor}
        self.trace.append(("rfactor", (blk.name, factor)))

    def tensorize(self, block: Union[str, Block], intrin: str) -> None:
        """Map the block's inner computation onto a Tensor Core MMA intrinsic."""
        from ...perf.tensor_core import MMA_SHAPES

        if intrin not in MMA_SHAPES:
            raise ScheduleError(
                f"unknown tensor intrinsic {intrin!r}; available: {sorted(MMA_SHAPES)}"
            )
        blk = self.get_block(block) if isinstance(block, str) else self.get_block(block.name)
        blk.annotations["tensorize"] = intrin
        self.trace.append(("tensorize", (blk.name, intrin)))

    # -- internal tree surgery ---------------------------------------------------------
    def _replace(self, old: Stmt, new: Stmt) -> None:
        body = _replace_node(self._func.body, old, new)
        if body is self._func.body and old is not new:
            raise ScheduleError("node to replace was not found in the program body")
        self._func = self._func.with_body(body)

    def _reacquire(self, loop_var: Var) -> ForLoop:
        for loop in self._func.loops():
            if loop.loop_var is loop_var:
                return loop
        raise ScheduleError(f"loop {loop_var.name!r} no longer exists")


# ---------------------------------------------------------------------------
# tree helpers
# ---------------------------------------------------------------------------

def _replace_node(stmt: Stmt, old: Stmt, new: Stmt) -> Stmt:
    if stmt is old:
        return new
    if isinstance(stmt, SeqStmt):
        replaced = [_replace_node(s, old, new) for s in stmt.stmts]
        if all(a is b for a, b in zip(replaced, stmt.stmts)):
            return stmt
        return SeqStmt(replaced)
    if isinstance(stmt, ForLoop):
        body = _replace_node(stmt.body, old, new)
        return stmt if body is stmt.body else stmt.with_body(body)
    if isinstance(stmt, Block):
        body = _replace_node(stmt.body, old, new)
        return stmt if body is stmt.body else stmt.with_body(body)
    if isinstance(stmt, IfThenElse):
        then_case = _replace_node(stmt.then_case, old, new)
        else_case = None if stmt.else_case is None else _replace_node(stmt.else_case, old, new)
        if then_case is stmt.then_case and else_case is stmt.else_case:
            return stmt
        return IfThenElse(stmt.condition, then_case, else_case)
    return stmt


def _path_to(stmt: Stmt, target: Stmt) -> Optional[List[Stmt]]:
    if stmt is target:
        return [stmt]
    children: Sequence[Stmt]
    if isinstance(stmt, SeqStmt):
        children = stmt.stmts
    elif isinstance(stmt, ForLoop):
        children = (stmt.body,)
    elif isinstance(stmt, Block):
        children = (stmt.body,)
    elif isinstance(stmt, IfThenElse):
        children = (stmt.then_case,) if stmt.else_case is None else (stmt.then_case, stmt.else_case)
    else:
        return None
    for child in children:
        sub = _path_to(child, target)
        if sub is not None:
            return [stmt] + sub
    return None


def _loop_chain(stmt: Stmt, wanted: set) -> Optional[List[ForLoop]]:
    """Find the perfectly nested chain containing exactly the wanted loops."""
    for node in _walk(stmt):
        if isinstance(node, ForLoop) and id(node) in wanted:
            chain = [node]
            cursor: Stmt = node.body
            while isinstance(cursor, ForLoop) and len(chain) < len(wanted):
                if id(cursor) not in wanted:
                    return None
                chain.append(cursor)
                cursor = cursor.body
            if len(chain) == len(wanted):
                return chain
            return None
    return None


def _walk(stmt: Stmt):
    yield stmt
    if isinstance(stmt, SeqStmt):
        for s in stmt.stmts:
            yield from _walk(s)
    elif isinstance(stmt, ForLoop):
        yield from _walk(stmt.body)
    elif isinstance(stmt, Block):
        yield from _walk(stmt.body)
    elif isinstance(stmt, IfThenElse):
        yield from _walk(stmt.then_case)
        if stmt.else_case is not None:
            yield from _walk(stmt.else_case)
