"""Sparse iteration lowering: stage I (coordinate space) to stage II (position space).

Implements the four steps of Section 3.3.1 of the paper:

1. **Auxiliary buffer materialization** — the ``indptr`` / ``indices`` arrays
   referenced by axes become explicit sparse buffers so that loop extents and
   coordinate translation can read them.
2. **Nested loop generation** — one loop per axis of every sparse iteration
   (or a single loop for a fused axis group), separated by TensorIR-style
   blocks wherever an inner extent depends on an outer loop variable.
3. **Coordinate translation** — buffer indices are rewritten from coordinate
   space to position space following equations (1)-(5); a binary-search
   intrinsic is emitted when a coordinate cannot be matched to an iterator
   position directly.
4. **Read/write region analysis** — each block is annotated with the buffer
   regions it reads and writes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..axes import Axis, DenseFixedAxis, DenseVariableAxis, SparseFixedAxis, SparseVariableAxis
from ..buffers import SparseBuffer
from ..expr import (
    Add,
    BinaryOp,
    BufferLoad,
    Call,
    Cast,
    Expr,
    IntImm,
    Not,
    Select,
    StringImm,
    Sub,
    Var,
    simplify,
)
from ..program import STAGE_COORDINATE, STAGE_POSITION, PrimFunc
from ..sparse_iteration import ITER_REDUCTION, FusedAxisGroup, SparseIteration
from ..stmt import (
    Block,
    BufferRegion,
    BufferStore,
    Evaluate,
    ForLoop,
    IfThenElse,
    SeqStmt,
    Stmt,
    collect_buffer_loads,
    collect_buffer_stores,
)

BINARY_SEARCH = "sparse_coord_to_pos"
ROW_UPPER_BOUND = "sparse_row_of_position"


class AuxBuffers:
    """Registry of auxiliary buffers materialised for axes."""

    def __init__(self) -> None:
        self.indptr: Dict[int, SparseBuffer] = {}
        self.indices: Dict[int, SparseBuffer] = {}
        self.extra_axes: List[Axis] = []

    def all_buffers(self) -> List[SparseBuffer]:
        buffers: List[SparseBuffer] = []
        for buf in list(self.indptr.values()) + list(self.indices.values()):
            if not any(existing is buf for existing in buffers):
                buffers.append(buf)
        return buffers


def materialize_aux_buffers(axes: Sequence[Axis]) -> AuxBuffers:
    """Step 1: create explicit buffers for indptr/indices arrays of axes."""
    aux = AuxBuffers()
    for axis in axes:
        if isinstance(axis, (DenseVariableAxis, SparseVariableAxis)):
            parent = axis.parent
            indptr_axis = DenseFixedAxis(f"{axis.name}_indptr_dim", (parent.length if parent else 0) + 1)
            aux.extra_axes.append(indptr_axis)
            buf = SparseBuffer(f"{axis.name}_indptr", [indptr_axis], dtype="int32")
            if axis.indptr is not None:
                buf.bind(axis.indptr)
            aux.indptr[id(axis)] = buf
        if isinstance(axis, (SparseFixedAxis, SparseVariableAxis)):
            parent = axis.parent
            if isinstance(axis, SparseFixedAxis):
                inner = DenseFixedAxis(f"{axis.name}_cols_dim", axis.nnz_cols)
                indices_axes = [parent, inner] if parent is not None else [inner]
            else:
                inner = DenseVariableAxis(
                    f"{axis.name}_dense",
                    parent,
                    axis.length,
                    axis.nnz,
                    indptr=axis.indptr,
                )
                indices_axes = [parent, inner]
            aux.extra_axes.append(inner)
            buf = SparseBuffer(f"{axis.name}_indices", indices_axes, dtype="int32")
            if axis.indices is not None:
                buf.bind(axis.indices)
            aux.indices[id(axis)] = buf
    return aux


def lower_sparse_iterations(func: PrimFunc) -> PrimFunc:
    """Lower every sparse iteration of a stage-I program to stage-II loops."""
    if func.stage != STAGE_COORDINATE:
        raise ValueError(f"lower_sparse_iterations expects a stage-I program, got {func.stage}")

    aux = materialize_aux_buffers(func.axes)
    lowered_parts: List[Stmt] = []
    for iteration in func.sparse_iterations():
        lowered_parts.append(_lower_iteration(iteration, aux, func))

    body: Stmt = SeqStmt(lowered_parts) if len(lowered_parts) != 1 else lowered_parts[0]
    lowered = PrimFunc(
        func.name,
        axes=list(func.axes) + aux.extra_axes,
        buffers=list(func.buffers),
        body=body,
        stage=STAGE_POSITION,
        aux_buffers=aux.all_buffers(),
        attrs=dict(func.attrs),
    )
    # Buffer-domain hints (Figure 7): value ranges of the auxiliary buffers.
    domains: Dict[str, Tuple[int, int]] = {}
    for axis in func.axes:
        if isinstance(axis, (DenseVariableAxis, SparseVariableAxis)):
            domains[f"{axis.name}_indptr"] = (0, axis.nnz_total())
        if isinstance(axis, (SparseFixedAxis, SparseVariableAxis)):
            domains[f"{axis.name}_indices"] = (0, axis.length)
    lowered.attrs["buffer_domains"] = domains
    return lowered


# ---------------------------------------------------------------------------
# Per-iteration lowering
# ---------------------------------------------------------------------------

class _AxisState:
    """Lowering state of one iteration axis: its loop, position and coordinate."""

    def __init__(self, axis: Axis, kind: str, coord_var: Var):
        self.axis = axis
        self.kind = kind
        self.coord_var = coord_var          # the stage-I iterator variable
        self.loop_var: Optional[Var] = None  # the stage-II position variable
        self.position: Optional[Expr] = None
        self.coordinate: Optional[Expr] = None


def _lower_iteration(iteration: SparseIteration, aux: AuxBuffers, func: PrimFunc) -> Stmt:
    flat_axes = list(iteration.flat_axes)
    states: Dict[int, _AxisState] = {}
    for axis, var, kind in zip(flat_axes, iteration.iter_vars, iteration.kinds):
        states[id(axis)] = _AxisState(axis, kind, var)

    # ---- step 2: build the loop skeleton (outermost to innermost) -----------
    loop_descriptions: List[Tuple[str, object]] = []  # ("axis", state) or ("fused", [states])
    for item in iteration.axes:
        if isinstance(item, FusedAxisGroup):
            loop_descriptions.append(("fused", [states[id(a)] for a in item.axes]))
        else:
            loop_descriptions.append(("axis", states[id(item)]))

    loops: List[ForLoop] = []
    block_breaks: List[int] = []  # indices in `loops` after which a block boundary sits
    for desc_kind, payload in loop_descriptions:
        if desc_kind == "axis":
            state: _AxisState = payload  # type: ignore[assignment]
            loop, needs_block = _make_axis_loop(state, states, aux)
            if needs_block and loops:
                block_breaks.append(len(loops))
            loops.append(loop)
        else:
            group_states: List[_AxisState] = payload  # type: ignore[assignment]
            loop = _make_fused_loop(group_states, aux)
            loops.append(loop)

    # ---- step 3: coordinate translation of the body --------------------------
    translator = _CoordinateTranslator(states, aux)
    body = translator.translate_stmt(iteration.body)
    init = None if iteration.init is None else translator.translate_stmt(iteration.init)

    # ---- step 4: region analysis + innermost block ---------------------------
    reads = [BufferRegion(l.buffer, l.indices) for l in collect_buffer_loads(body)]
    writes = [BufferRegion(s.buffer, s.indices) for s in collect_buffer_stores(body)]
    reduction_vars = [
        states[id(a)].loop_var
        for a in flat_axes
        if states[id(a)].kind == ITER_REDUCTION and states[id(a)].loop_var is not None
    ]
    inner_block = Block(
        f"{iteration.name}_compute",
        body,
        init=init,
        reads=reads,
        writes=writes,
        annotations={"sparse_iteration": iteration.name},
        iter_vars=[states[id(a)].loop_var for a in flat_axes if states[id(a)].loop_var is not None],
        iter_kinds=[states[id(a)].kind for a in flat_axes],
    )
    inner_block.annotations["reduction_vars"] = reduction_vars

    # ---- assemble nest, inserting structural blocks at the recorded breaks ---
    current: Stmt = inner_block
    for index in range(len(loops) - 1, -1, -1):
        current = loops[index].with_body(current)
        if index in block_breaks:
            current = Block(f"{iteration.name}_outer_{index}", current,
                            annotations={"structural": True})
    return current


def _make_axis_loop(
    state: _AxisState, states: Dict[int, _AxisState], aux: AuxBuffers
) -> Tuple[ForLoop, bool]:
    """Create the loop for a single (non-fused) axis and fill in its state."""
    axis = state.axis
    loop_var = Var(f"{state.coord_var.name}_p", "int32")
    state.loop_var = loop_var
    needs_block = False

    if isinstance(axis, DenseFixedAxis):
        extent: Expr = IntImm(axis.length)
        state.position = loop_var
        state.coordinate = loop_var
    elif isinstance(axis, SparseFixedAxis):
        extent = IntImm(axis.nnz_cols)
        state.position = loop_var
        parent_pos = _parent_position(axis, states)
        indices_buf = aux.indices[id(axis)]
        state.coordinate = BufferLoad(indices_buf, [parent_pos, loop_var])
    elif isinstance(axis, (DenseVariableAxis, SparseVariableAxis)):
        parent_pos = _parent_position(axis, states)
        indptr_buf = aux.indptr[id(axis)]
        extent = Sub(
            BufferLoad(indptr_buf, [Add(parent_pos, IntImm(1))]),
            BufferLoad(indptr_buf, [parent_pos]),
        )
        state.position = loop_var
        if isinstance(axis, SparseVariableAxis):
            indices_buf = aux.indices[id(axis)]
            state.coordinate = BufferLoad(indices_buf, [parent_pos, loop_var])
        else:
            state.coordinate = loop_var
        needs_block = True
    else:  # pragma: no cover - the four kinds above are exhaustive
        raise TypeError(f"unsupported axis type {type(axis)}")

    return ForLoop(loop_var, IntImm(0), extent, body=Evaluate(IntImm(0))), needs_block


def _make_fused_loop(group_states: List[_AxisState], aux: AuxBuffers) -> ForLoop:
    """Create a single loop over the flattened non-zero space of fused axes.

    The fused loop ranges over the total number of (padded) non-zeros of the
    innermost fused axis.  Positions and coordinates of the member axes are
    recovered from the fused variable: the row is found with an upper-bound
    search on the indptr array, matching how fused SDDMM kernels recover the
    row index of an edge.
    """
    last = group_states[-1].axis
    fused_var = Var("_".join(s.coord_var.name for s in group_states) + "_fused", "int32")
    extent = IntImm(last.nnz_total())

    # Innermost axis: global position is the fused variable itself.
    for depth, state in enumerate(group_states):
        axis = state.axis
        state.loop_var = fused_var
        if axis is last:
            if isinstance(axis, (SparseVariableAxis, DenseVariableAxis)):
                indptr_buf = aux.indptr[id(axis)]
                parent_state = group_states[depth - 1] if depth > 0 else None
                if parent_state is not None:
                    parent_pos = parent_state.position
                else:
                    parent_pos = IntImm(0)
                local = Sub(fused_var, BufferLoad(indptr_buf, [parent_pos]))
                state.position = local
                if isinstance(axis, SparseVariableAxis):
                    indices_buf = aux.indices[id(axis)]
                    state.coordinate = BufferLoad(indices_buf, [parent_pos, local])
                else:
                    state.coordinate = local
            elif isinstance(axis, SparseFixedAxis):
                parent_state = group_states[depth - 1] if depth > 0 else None
                nnz_cols = IntImm(axis.nnz_cols)
                local = Call("floormod", [fused_var, nnz_cols]) if False else fused_var % nnz_cols
                state.position = local
                parent_pos = parent_state.position if parent_state else IntImm(0)
                indices_buf = aux.indices[id(axis)]
                state.coordinate = BufferLoad(indices_buf, [parent_pos, local])
            else:
                state.position = fused_var
                state.coordinate = fused_var
        else:
            # Ancestor axes: recover their position from the fused variable.
            child = group_states[depth + 1].axis
            if isinstance(child, (SparseVariableAxis, DenseVariableAxis)):
                indptr_buf = aux.indptr[id(child)]
                row = Sub(
                    Call(ROW_UPPER_BOUND, [StringImm(child.name), fused_var], dtype="int32"),
                    IntImm(0),
                )
                state.position = row
                state.coordinate = row if axis.is_dense else _sparse_coord(axis, states_of(group_states, depth), row, aux)
            else:
                per_parent = IntImm(child.row_extent(0))
                row = fused_var // per_parent
                state.position = row
                state.coordinate = row
    return ForLoop(fused_var, IntImm(0), extent, body=Evaluate(IntImm(0)),
                   annotations={"fused_axes": [s.axis.name for s in group_states]})


def states_of(group_states: List[_AxisState], depth: int) -> Dict[int, _AxisState]:
    return {id(s.axis): s for s in group_states[: depth + 1]}


def _sparse_coord(axis: Axis, states: Dict[int, _AxisState], position: Expr, aux: AuxBuffers) -> Expr:
    indices_buf = aux.indices[id(axis)]
    parent_pos = _parent_position(axis, states)
    return BufferLoad(indices_buf, [parent_pos, position])


def _parent_position(axis: Axis, states: Dict[int, _AxisState]) -> Expr:
    """Position of the parent axis in the current iteration (0 if absent)."""
    parent = axis.parent
    if parent is None:
        return IntImm(0)
    state = states.get(id(parent))
    if state is None or state.position is None:
        return IntImm(0)
    return state.position


# ---------------------------------------------------------------------------
# Coordinate translation (step 3)
# ---------------------------------------------------------------------------

class _CoordinateTranslator:
    """Rewrites coordinate-space buffer accesses into position space."""

    def __init__(self, states: Dict[int, _AxisState], aux: AuxBuffers):
        self.states = states
        self.aux = aux
        # Substitution used for *non-buffer-index* scalar appearances of the
        # iterator variables (rare) and for index expressions on dense axes.
        self.coord_substitution: Dict[Var, Expr] = {
            s.coord_var: s.coordinate for s in states.values() if s.coordinate is not None
        }

    # -- statements ------------------------------------------------------------
    def translate_stmt(self, stmt: Stmt) -> Stmt:
        if isinstance(stmt, SeqStmt):
            return SeqStmt([self.translate_stmt(s) for s in stmt.stmts])
        if isinstance(stmt, BufferStore):
            indices = self._translate_buffer_indices(stmt.buffer, stmt.indices)
            return BufferStore(stmt.buffer, indices, self.translate_expr(stmt.value))
        if isinstance(stmt, IfThenElse):
            return IfThenElse(
                self.translate_expr(stmt.condition),
                self.translate_stmt(stmt.then_case),
                None if stmt.else_case is None else self.translate_stmt(stmt.else_case),
            )
        if isinstance(stmt, Evaluate):
            return Evaluate(self.translate_expr(stmt.value))
        if isinstance(stmt, SparseIteration):
            raise ValueError(
                "nested sparse iterations must be lowered separately; decompose the "
                "program so each sparse iteration is a top-level statement"
            )
        return stmt

    # -- expressions ------------------------------------------------------------
    def translate_expr(self, expr: Expr) -> Expr:
        if isinstance(expr, BufferLoad):
            indices = self._translate_buffer_indices(expr.buffer, expr.indices)
            return BufferLoad(expr.buffer, indices)
        if isinstance(expr, Var):
            return self.coord_substitution.get(expr, expr)
        if isinstance(expr, BinaryOp):
            return type(expr)(self.translate_expr(expr.a), self.translate_expr(expr.b))
        if isinstance(expr, Not):
            return Not(self.translate_expr(expr.a))
        if isinstance(expr, Select):
            return Select(
                self.translate_expr(expr.condition),
                self.translate_expr(expr.true_value),
                self.translate_expr(expr.false_value),
            )
        if isinstance(expr, Cast):
            return Cast(self.translate_expr(expr.value), expr.dtype)
        if isinstance(expr, Call):
            return Call(expr.func, [self.translate_expr(a) for a in expr.args], expr.dtype)
        return expr

    def _translate_buffer_indices(self, buffer: SparseBuffer, indices: Sequence[Expr]) -> List[Expr]:
        """Equation (1): translate each buffer index from coordinates to positions."""
        positions: List[Expr] = []
        for buffer_axis, index in zip(buffer.axes, indices):
            position = self._translate_one(buffer, buffer_axis, index, positions)
            positions.append(simplify(position))
        return positions

    def _translate_one(
        self,
        buffer: SparseBuffer,
        buffer_axis: Axis,
        index: Expr,
        earlier_positions: List[Expr],
    ) -> Expr:
        # Fast path: the index is exactly an iterator variable bound to the
        # same axis object -> reuse its position (no search necessary).
        if isinstance(index, Var):
            state = self._state_of_var(index)
            if state is not None and state.axis is buffer_axis:
                return state.position if state.position is not None else index

        # General path: compute the coordinate value, then compress it.
        coordinate = self.translate_expr(self._coordinate_value(index))
        if buffer_axis.is_dense:
            return coordinate
        # Sparse buffer axis: need the parent's position within this buffer.
        parent_pos = self._buffer_parent_position(buffer, buffer_axis, earlier_positions)
        return Call(
            BINARY_SEARCH,
            [StringImm(buffer_axis.name), parent_pos, coordinate],
            dtype="int32",
        )

    def _coordinate_value(self, index: Expr) -> Expr:
        """Substitute iterator variables by their coordinate expressions."""
        if isinstance(index, Var):
            return self.coord_substitution.get(index, index)
        return index

    def _state_of_var(self, var: Var) -> Optional[_AxisState]:
        for state in self.states.values():
            if state.coord_var is var:
                return state
        return None

    def _buffer_parent_position(
        self, buffer: SparseBuffer, buffer_axis: Axis, earlier_positions: List[Expr]
    ) -> Expr:
        parent = buffer_axis.parent
        if parent is None:
            return IntImm(0)
        for axis, position in zip(buffer.axes, earlier_positions):
            if axis is parent:
                return position
        state = self.states.get(id(parent))
        if state is not None and state.position is not None:
            return state.position
        return IntImm(0)
