"""repro: a from-scratch reproduction of SparseTIR (ASPLOS 2023).

The package implements composable sparse formats, the three-stage SparseTIR
IR with composable transformations, a NumPy execution backend, a simulated
GPU performance model, the sparse operators and baselines evaluated in the
paper, synthetic workload generators, end-to-end GNN models, and a format /
schedule auto-tuner.

Quick start::

    from repro.ops import spmm
    from repro.workloads.graphs import synthetic_graph
    from repro.perf.device import V100

    graph = synthetic_graph("ogbn-arxiv-small", seed=0)
    result = spmm.spmm_sparsetir_hyb(graph.to_csr(), feat_size=32, device=V100)
"""

from . import core

__version__ = "0.1.0"

__all__ = ["core", "__version__"]
