"""repro: a from-scratch reproduction of SparseTIR (ASPLOS 2023).

The package implements composable sparse formats, the three-stage SparseTIR
IR with composable transformations, a NumPy execution backend, a simulated
GPU performance model, the sparse operators and baselines evaluated in the
paper, synthetic workload generators, end-to-end GNN models, and a format /
schedule auto-tuner.

Quick start::

    import numpy as np
    from repro.runtime import Session
    from repro.workloads.graphs import feature_matrix, synthetic_graph

    graph = synthetic_graph("cora", seed=0)
    csr = graph.to_csr()
    session = Session()  # compile-once/run-many: cached formats + kernels
    result = session.spmm(csr, feature_matrix(csr.cols, 32), format="hyb")
"""

from . import core

__version__ = "0.1.0"

__all__ = ["core", "__version__"]
