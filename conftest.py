"""Repository-root pytest bootstrap.

Makes ``python -m pytest`` work from a plain checkout by putting ``src`` on
``sys.path`` when the ``repro`` package is not installed.  With an editable
install (``pip install -e .``, see pyproject.toml) this is a no-op.
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite the golden emitted-kernel sources under tests/goldens/",
    )
