"""GNN SpMM: composable-format tuning and comparison against baselines.

Generates a power-law graph with the statistics of ogbn-arxiv (Table 1),
searches the joint format/schedule space of the ``hyb`` SpMM with the tuner,
and prints the estimated speedup over every baseline of Figure 13.

Run with:  python examples/gnn_spmm_tuning.py
"""

import numpy as np

from repro.baselines import cusparse, dgsparse, sputnik, taco
from repro.ops.spmm import spmm_csr_workload, spmm_hyb_workload, spmm_reference
from repro.perf.device import V100
from repro.perf.gpu_model import GPUModel
from repro.runtime import Session
from repro.tune import SpMMProblem, tune_spmm
from repro.workloads.graphs import feature_matrix, synthetic_graph


def main() -> None:
    feat_size = 128
    graph = synthetic_graph("ogbn-arxiv", seed=0)
    csr = graph.to_csr()
    print(f"graph {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges "
          f"(scale {graph.spec.scale:.2f} of the original)")

    # Tune the composable format and schedule parameters (Section 2's tuner).
    # The session memoises every candidate decomposition, so re-tuning (or
    # building the tuned kernel below) never re-buckets the same structure.
    session = Session()
    result = tune_spmm(csr, feat_size, V100, max_trials=40, session=session)
    print(f"tuner evaluated {result.evaluated} configurations; best: {result.best_config} "
          f"-> {result.best_cost:.1f} us")

    model = GPUModel(V100)
    tuned_hyb = session.decompose_hyb(
        csr,
        num_col_parts=result.best_config["num_col_parts"],
        num_buckets=result.best_config["num_buckets"],
    )
    durations = {
        "cuSPARSE": model.estimate(cusparse.spmm_workload(csr, feat_size, V100)).duration_us,
        "Sputnik": model.estimate(sputnik.spmm_workload(csr, feat_size, V100)).duration_us,
        "dgSPARSE": model.estimate(dgsparse.spmm_workload(csr, feat_size, V100)).duration_us,
        "TACO": model.estimate(taco.spmm_workload(csr, feat_size, V100)).duration_us,
        "SparseTIR(no-hyb)": model.estimate(
            spmm_csr_workload(csr, feat_size, V100)
        ).duration_us,
        "SparseTIR(hyb)": model.estimate(
            spmm_hyb_workload(
                tuned_hyb, feat_size, V100,
                threads_per_block=result.best_config["threads_per_block"],
            )
        ).duration_us,
    }
    baseline = durations["cuSPARSE"]
    print(f"\n{'system':<20s} {'duration (us)':>14s} {'speedup vs cuSPARSE':>22s}")
    for system, duration in durations.items():
        print(f"{system:<20s} {duration:>14.1f} {baseline / duration:>22.2f}")
    print(f"\nhyb padding ratio: {tuned_hyb.padding_ratio:.1%} "
          f"(paper reports {graph.spec.paper_padding_percent:.1f}% for the full-size graph)")

    # Numerically execute the tuned composable-format kernel on a small
    # feature slice through the session (vectorized fast path + kernel cache)
    # and validate it against the dense reference.
    features = feature_matrix(csr.cols, 16, seed=1)
    out = session.spmm(
        csr,
        features,
        format="hyb",
        num_col_parts=result.best_config["num_col_parts"],
        num_buckets=result.best_config["num_buckets"],
    )
    error = float(np.abs(out - spmm_reference(csr, features)).max())
    print(f"tuned hyb kernel executed; max |error| vs dense reference: {error:.2e}")
    print(f"session stats: {session.stats.as_dict()}")

    # The workload-generic autoscheduler (docs/tuning.md) wraps the same
    # search behind one API: phase 1 prunes the space with the GPU cost
    # model, phase 2 measures the survivors' wallclock on the cached
    # emitted-kernel tier, and the winner is remembered so tuned=True
    # operator calls pick it up automatically.
    auto = session.autotune(
        "spmm", SpMMProblem(csr, 16), max_trials=24, survivors=3, repeats=2
    )
    print(f"\nautoscheduler best ({auto.evaluated} model evals, "
          f"{auto.best_measured_s * 1e3:.2f} ms measured): {auto.best_config}")
    tuned_out = session.spmm(csr, features, tuned=True)
    print("tuned=True output matches:",
          bool(np.allclose(tuned_out, spmm_reference(csr, features), atol=1e-3)))


if __name__ == "__main__":
    main()
