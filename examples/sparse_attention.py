"""Sparse attention operators: Longformer band and Pixelated Butterfly masks.

Builds the two block-sparse attention masks of Section 4.3.1, *executes* one
multi-head attention step (SDDMM -> scaling -> SpMM) end-to-end through a
compile-once/run-many Session on a reduced configuration, and compares the
SparseTIR BSR (Tensor Core) and CSR kernels against Triton's block-sparse
baseline at the paper's full configuration (4096 sequence length, band 256,
12 heads, 64-dimensional heads).

Run with:  python examples/sparse_attention.py
"""

import numpy as np

from repro.baselines import triton
from repro.formats import BSRMatrix
from repro.ops.batched import (
    batched_sddmm_bsr_workload,
    batched_sddmm_reference,
    batched_spmm_bsr_workload,
    batched_spmm_csr_workload,
    batched_spmm_reference,
)
from repro.perf.device import V100
from repro.perf.gpu_model import GPUModel
from repro.runtime import Session
from repro.workloads.attention import AttentionConfig, band_mask, butterfly_mask


def run_attention_step() -> None:
    """One masked attention step through the Session runtime (reduced size).

    SDDMM produces the scaled per-head scores at the mask's non-zeros, and
    the aggregation re-uses those scores as the sparse values of a per-head
    SpMM (softmax is omitted); every kernel runs through one
    compile-once/run-many session, so the per-head SpMMs after the first are
    pure kernel-cache hits (same structure, rebound score values).
    """
    heads, seq, dim, block = 4, 128, 16, 8
    mask = band_mask(seq_len=seq, band_size=32, block_size=block)
    rng = np.random.default_rng(0)
    q = rng.standard_normal((heads, seq, dim)).astype(np.float32)
    k = rng.standard_normal((heads, dim, seq)).astype(np.float32)
    v = rng.standard_normal((heads, seq, dim)).astype(np.float32)

    session = Session()
    # Scores at the mask's non-zeros, scaled by 1/sqrt(d) inside the kernel.
    scores = session.batched_sddmm(mask, q, k, format="bsr", block_size=block,
                                   scale=1.0 / np.sqrt(dim))
    assert np.allclose(
        scores, batched_sddmm_reference(mask, q, k) / np.sqrt(dim), atol=1e-4
    )
    # Aggregate the values with the computed scores: one SpMM per head over
    # the shared structure — head h rebinds S[h] as the sparse values.
    from repro.formats import CSRMatrix

    out = np.stack([
        session.spmm(
            CSRMatrix(mask.shape, mask.indptr, mask.indices, data=scores[h]), v[h]
        )
        for h in range(heads)
    ])
    expected = batched_spmm_reference(
        CSRMatrix(mask.shape, mask.indptr, mask.indices, data=scores[0]), v[:1]
    )
    assert np.allclose(out[0], expected[0], atol=1e-4)

    stats = session.stats.as_dict()
    print(f"attention step ({heads} heads, seq {seq}, dim {dim}) executed "
          f"through the Session runtime:")
    print(f"  engines: {stats['vectorized_runs']} vectorized, "
          f"{stats['interpreted_runs']} interpreted")
    print(f"  kernel cache: {stats['kernel_cache_misses']} misses, "
          f"{stats['kernel_cache_hits']} hits "
          f"(heads 2-{heads} of the aggregation rebind values on one build); "
          f"format cache: {stats['format_cache_misses']} misses, "
          f"{stats['format_cache_hits']} hits")

    # Rerun with fresh inputs: same structures, so every build is a hit.
    session.batched_sddmm(mask, q + 1, k, format="bsr", block_size=block,
                          scale=1.0 / np.sqrt(dim))
    stats = session.stats.as_dict()
    print(f"  after rerun: {stats['kernel_cache_hits']} kernel cache hits, "
          f"{stats['format_cache_hits']} format cache hits")


def main() -> None:
    run_attention_step()

    config = AttentionConfig()
    model = GPUModel(V100)
    for pattern_name, mask in (
        ("longformer(band)", band_mask(config.seq_len, config.band_size, config.block_size)),
        ("butterfly", butterfly_mask(config.seq_len, config.block_size)),
    ):
        bsr = BSRMatrix.from_csr(mask, config.block_size)
        print(f"\n=== {pattern_name}: {mask.nnz} non-zeros, {bsr.num_blocks} blocks ===")
        results = {
            "Triton (SpMM)": model.estimate(
                triton.blocksparse_spmm_workload(bsr, config.head_dim, config.num_heads, V100)
            ),
            "SparseTIR-CSR (SpMM)": model.estimate(
                batched_spmm_csr_workload(mask, config.head_dim, config.num_heads, V100)
            ),
            "SparseTIR-BSR (SpMM)": model.estimate(
                batched_spmm_bsr_workload(bsr, config.head_dim, config.num_heads, V100)
            ),
            "Triton (SDDMM)": model.estimate(
                triton.blocksparse_sddmm_workload(bsr, config.head_dim, config.num_heads, V100)
            ),
            "SparseTIR-BSR (SDDMM)": model.estimate(
                batched_sddmm_bsr_workload(bsr, config.head_dim, config.num_heads, V100)
            ),
        }
        spmm_base = results["Triton (SpMM)"].duration_us
        sddmm_base = results["Triton (SDDMM)"].duration_us
        for name, report in results.items():
            base = sddmm_base if "SDDMM" in name else spmm_base
            print(f"{name:<24s} {report.duration_us:>10.1f} us   {base / report.duration_us:>6.2f}x vs Triton")


if __name__ == "__main__":
    main()
