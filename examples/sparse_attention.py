"""Sparse attention operators: Longformer band and Pixelated Butterfly masks.

Builds the two block-sparse attention masks of Section 4.3.1, verifies the
batched SpMM / SDDMM references on a reduced configuration, and compares the
SparseTIR BSR (Tensor Core) and CSR kernels against Triton's block-sparse
baseline at the paper's full configuration (4096 sequence length, band 256,
12 heads, 64-dimensional heads).

Run with:  python examples/sparse_attention.py
"""

import numpy as np

from repro.baselines import triton
from repro.formats import BSRMatrix
from repro.ops.batched import (
    batched_sddmm_bsr_workload,
    batched_spmm_bsr_workload,
    batched_spmm_csr_workload,
    batched_spmm_reference,
)
from repro.perf.device import V100
from repro.perf.gpu_model import GPUModel
from repro.workloads.attention import AttentionConfig, band_mask, butterfly_mask


def verify_small() -> None:
    """Numerical check of the batched reference on a small configuration."""
    rng = np.random.default_rng(0)
    mask = band_mask(seq_len=64, band_size=16, block_size=8)
    features = rng.standard_normal((2, 64, 8)).astype(np.float32)
    out = batched_spmm_reference(mask, features)
    dense = mask.to_dense()
    expected = np.stack([dense @ features[h] for h in range(2)])
    assert np.allclose(out, expected, atol=1e-4)
    print("batched SpMM reference verified on a 64x64 band mask")


def main() -> None:
    verify_small()

    config = AttentionConfig()
    model = GPUModel(V100)
    for pattern_name, mask in (
        ("longformer(band)", band_mask(config.seq_len, config.band_size, config.block_size)),
        ("butterfly", butterfly_mask(config.seq_len, config.block_size)),
    ):
        bsr = BSRMatrix.from_csr(mask, config.block_size)
        print(f"\n=== {pattern_name}: {mask.nnz} non-zeros, {bsr.num_blocks} blocks ===")
        results = {
            "Triton (SpMM)": model.estimate(
                triton.blocksparse_spmm_workload(bsr, config.head_dim, config.num_heads, V100)
            ),
            "SparseTIR-CSR (SpMM)": model.estimate(
                batched_spmm_csr_workload(mask, config.head_dim, config.num_heads, V100)
            ),
            "SparseTIR-BSR (SpMM)": model.estimate(
                batched_spmm_bsr_workload(bsr, config.head_dim, config.num_heads, V100)
            ),
            "Triton (SDDMM)": model.estimate(
                triton.blocksparse_sddmm_workload(bsr, config.head_dim, config.num_heads, V100)
            ),
            "SparseTIR-BSR (SDDMM)": model.estimate(
                batched_sddmm_bsr_workload(bsr, config.head_dim, config.num_heads, V100)
            ),
        }
        spmm_base = results["Triton (SpMM)"].duration_us
        sddmm_base = results["Triton (SDDMM)"].duration_us
        for name, report in results.items():
            base = sddmm_base if "SDDMM" in name else spmm_base
            print(f"{name:<24s} {report.duration_us:>10.1f} us   {base / report.duration_us:>6.2f}x vs Triton")


if __name__ == "__main__":
    main()
