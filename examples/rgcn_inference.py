"""End-to-end RGCN inference on a heterogeneous graph (Figure 20 style).

Generates a synthetic heterogeneous graph with the statistics of AIFB
(Table 2), runs the NumPy RGCN forward pass for correctness, and estimates
inference time and GPU memory footprint for every system compared in
Figure 20: PyG, DGL, Graphiler, and SparseTIR without composable formats,
with the 3-D hyb format, and with hyb + Tensor Cores.

Run with:  python examples/rgcn_inference.py
"""

import numpy as np

from repro.models.rgcn import RGCN, RGCN_SYSTEMS, rgcn_speedup_table
from repro.ops.rgms import rgms_reference, rgms_two_stage_reference
from repro.perf.device import V100
from repro.workloads.hetero_graphs import synthetic_hetero_graph


def main() -> None:
    feat_size = 32
    graph = synthetic_hetero_graph("aifb", seed=0)
    print(f"graph {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{graph.num_etypes} relations")

    # Correctness: fused RGMS equals the two-stage formulation, and the model runs.
    rng = np.random.default_rng(0)
    features = rng.standard_normal((graph.num_nodes, feat_size)).astype(np.float32)
    weights = rng.standard_normal((graph.num_etypes, feat_size, feat_size)).astype(np.float32) * 0.05
    fused = rgms_reference(graph.adjacency, features, weights)
    two_stage = rgms_two_stage_reference(graph.adjacency, features, weights)
    assert np.allclose(fused, two_stage, atol=1e-3)
    model = RGCN(graph.adjacency, in_feats=feat_size, hidden=feat_size, num_classes=4)
    logits = model.forward(features)
    print(f"RGCN forward pass OK, logits shape {logits.shape}")

    # Figure 20: per-system inference time and memory footprint.
    table = rgcn_speedup_table(graph.adjacency, feat_size, V100)
    baseline = table["graphiler"].duration_us
    print(f"\n{'system':<20s} {'time (us)':>12s} {'speedup vs Graphiler':>22s} {'memory (MiB)':>14s}")
    for system in RGCN_SYSTEMS:
        estimate = table[system]
        print(
            f"{system:<20s} {estimate.duration_us:>12.1f} "
            f"{baseline / estimate.duration_us:>22.2f} "
            f"{estimate.memory_footprint_bytes / 2**20:>14.1f}"
        )


if __name__ == "__main__":
    main()
