"""Composable formats: decompose a CSR SpMM into BSR + ELL computations.

Reproduces the flow of Figure 5 / Appendix A of the paper: the matrix is
split into a block-friendly part (stored BSR) and a light remainder (stored
ELL), the SpMM program is rewritten with ``decompose_format``, and the
decomposed program — copy iterations plus one compute iteration per format —
is lowered, executed and checked against the monolithic result.

Run with:  python examples/format_decomposition.py
"""

import numpy as np

from repro.core import build, decompose_format
from repro.formats import CSRMatrix
from repro.formats.conversion import bsr_rewrite_rule, ell_rewrite_rule, split_csr_for_composition
from repro.ops.spmm import build_spmm_program, spmm_reference


def main() -> None:
    rng = np.random.default_rng(1)
    # A matrix whose heavy rows benefit from blocks and whose light rows fit ELL.
    dense = np.zeros((32, 32), dtype=np.float32)
    dense[:8, :16] = rng.random((8, 16))                      # dense block region
    light = rng.random((24, 32)) < 0.06
    dense[8:, :] = light * rng.random((24, 32))               # scattered remainder
    matrix = CSRMatrix.from_dense(dense)
    feat_size = 8
    features = rng.standard_normal((32, feat_size)).astype(np.float32)

    # Split the matrix and build the two rewrite rules of Appendix A.
    ell_width = 4
    bsr, ell, heavy, lightpart = split_csr_for_composition(matrix, block_size=4, ell_width=ell_width)
    print(f"heavy part -> {bsr}")
    print(f"light part -> {ell}")

    program = build_spmm_program(matrix, feat_size, features)
    rules = [bsr_rewrite_rule(bsr, buffer_name="A"), ell_rewrite_rule(ell, buffer_name="A")]
    decomposed = decompose_format(program, rules)
    print("=== decomposed stage-I program ===")
    print(decomposed.script())

    kernel = build(decomposed)
    out = kernel.run()
    result = out["C"].reshape(matrix.rows, feat_size)
    reference = spmm_reference(matrix, features)
    error = np.abs(result - reference).max()
    print(f"max |error| of the decomposed kernel: {error:.2e}")
    assert error < 1e-3
    print(f"kernel launches before horizontal fusion: {len(decomposed.sparse_iterations())}, "
          f"after: {kernel.num_launches}")


if __name__ == "__main__":
    main()
