"""Quickstart: build, lower, run and profile a SparseTIR SpMM kernel.

This walks the full pipeline of the paper on a small random sparse matrix:

1. write the stage-I (coordinate space) program with the builder API;
2. lower it to stage II (position space) and stage III (flat loops);
3. execute the compiled kernel on the NumPy runtime (the vectorized fast
   path) through a compile-once/run-many Session and check it against a
   dense reference;
4. inspect the generated CUDA-like listing;
5. estimate its execution time on a simulated V100.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Schedule, lower_sparse_iterations
from repro.formats import CSRMatrix
from repro.ops.spmm import build_spmm_program, spmm_reference
from repro.perf.device import V100
from repro.runtime import Session


def main() -> None:
    rng = np.random.default_rng(0)
    matrix = CSRMatrix.random(rows=64, cols=96, density=0.08, seed=0)
    feat_size = 16
    features = rng.standard_normal((matrix.cols, feat_size)).astype(np.float32)
    session = Session()

    # 1. Stage-I program (Figure 3 of the paper).
    program = build_spmm_program(matrix, feat_size, features)
    print("=== stage-I program ===")
    print(program.script())

    # 2. Lower to stage II and apply a loop-level schedule: bind the row loop
    #    to thread blocks and the feature loop to threads.
    stage2 = lower_sparse_iterations(program)
    schedule = Schedule(stage2)
    loops = schedule.get_loops("spmm_compute")
    schedule.bind(loops[0], "blockIdx.x")
    schedule.bind(loops[-1], "threadIdx.x")

    # 3. Build (stage III + codegen, cached structurally by the session) and
    #    execute on the NumPy runtime's vectorized fast path.
    kernel = session.build(schedule.func)
    out = session.run_kernel(kernel)
    result = out["C"].reshape(matrix.rows, feat_size)
    reference = spmm_reference(matrix, features)
    error = np.abs(result - reference).max()
    print(f"max |error| vs dense reference: {error:.2e} "
          f"(engine: {kernel.last_engine})")
    assert error < 1e-4

    # Rebuilding the same structure hits the session's kernel cache, and the
    # new value arrays are rebound — this is the compile-once/run-many path a
    # model uses when it executes the same kernel every layer.
    other = rng.standard_normal((matrix.cols, feat_size)).astype(np.float32)
    session.run(build_spmm_program(matrix, feat_size, other), horizontal_fusion=True)
    session.run(build_spmm_program(matrix, feat_size, features))
    print(f"session stats after re-runs: {session.stats.as_dict()}")

    # 4. The CUDA-like listing produced by code generation.
    print("=== generated kernel (excerpt) ===")
    print("\n".join(kernel.cuda_source().splitlines()[:16]))

    # 5. Performance estimate on a simulated V100.
    report = kernel.profile(V100)
    print(
        f"estimated duration on {report.device}: {report.duration_us:.1f} us "
        f"({report.total_flops / 1e6:.2f} MFLOP, {report.total_dram_bytes / 1e6:.2f} MB DRAM)"
    )


if __name__ == "__main__":
    main()
