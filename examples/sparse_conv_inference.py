"""Sparse-convolution inference through the Session runtime (Section 4.4.2).

Builds a small MinkowskiNet-style backbone over a synthetic voxelised scan,
runs the full forward pass twice through one compile-once/run-many Session —
every layer's gather-GEMM-scatter kernel is compiled on the first pass and a
structural cache hit on the second — verifies the result against the NumPy
reference, and prints the session's engine/cache statistics plus the
per-layer SparseTIR-vs-TorchSparse estimates of Figure 23.

Run with:  python examples/sparse_conv_inference.py
"""

import numpy as np

from repro.models.minkowski import MinkowskiBackbone, estimate_layer_times
from repro.perf.device import V100
from repro.runtime import Session
from repro.workloads.pointcloud import PointCloudConfig


def main() -> None:
    config = PointCloudConfig(num_points=2000, voxel_size=0.8, seed=0)
    channel_plan = [(8, 16), (16, 16), (16, 8)]
    backbone = MinkowskiBackbone(channel_plan, config=config, seed=0)
    num_voxels = backbone.layers[0].problem.num_in_points
    print(f"voxelised scan: {num_voxels} voxels, {len(backbone.layers)} layers "
          f"({backbone.layers[0].problem.kernel_volume}-offset kernels)")

    rng = np.random.default_rng(0)
    features = rng.standard_normal((num_voxels, channel_plan[0][0])).astype(np.float32)

    session = Session()
    out = backbone.forward(features, session=session)
    reference = backbone.forward(features)
    assert np.allclose(out, reference, atol=1e-3), "Session forward diverged"
    print(f"forward pass verified against the NumPy reference "
          f"(output {out.shape}, max |err| {np.abs(out - reference).max():.2e})")

    # Second pass: identical structures -> every build is a kernel-cache hit.
    backbone.forward(features, session=session)
    stats = session.stats.as_dict()
    print("\nsession stats after two forward passes:")
    for key, value in stats.items():
        print(f"  {key:<22s} {value}")
    assert stats["kernel_cache_hits"] == len(backbone.layers)

    print("\nper-layer estimates (V100, Figure 23):")
    for index, layer in enumerate(backbone.layers):
        times = estimate_layer_times(layer.problem, V100)
        cin, cout = layer.problem.in_channels, layer.problem.out_channels
        print(f"  layer {index} ({cin:>3d}->{cout:<3d}): "
              f"SparseTIR-TC {times['sparsetir_tc_us']:8.1f} us   "
              f"TorchSparse {times['torchsparse_us']:8.1f} us   "
              f"speedup {times['speedup']:.2f}x")


if __name__ == "__main__":
    main()
