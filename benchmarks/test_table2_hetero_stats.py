"""Table 2: statistics of the heterogeneous graphs and the hyb %padding column."""

import pytest

from repro.formats.hyb import HybFormat
from repro.workloads.hetero_graphs import available_hetero_graphs, synthetic_hetero_graph


def _relational_padding_percent(graph) -> float:
    stored = 0
    nnz = 0
    for matrix in graph.adjacency.slices:
        if matrix is None or matrix.nnz == 0:
            continue
        hyb = HybFormat.from_csr(matrix, num_col_parts=1, num_buckets=5)
        stored += hyb.stored
        nnz += hyb.nnz
    return 100.0 * (1.0 - nnz / stored) if stored else 0.0


@pytest.mark.figure("table2")
def test_table2_heterogeneous_graph_statistics(benchmark):
    def build():
        rows = []
        for name in available_hetero_graphs():
            graph = synthetic_hetero_graph(name, seed=0)
            rows.append((graph, _relational_padding_percent(graph)))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\n=== Table 2: heterogeneous graphs used in RGCN (synthetic, scaled) ===")
    print(f"{'graph':<14}{'#nodes':>9}{'#edges':>10}{'#etypes':>9}{'%padding':>10}"
          f"{'paper nodes':>13}{'paper edges':>13}{'paper %pad':>12}")
    for graph, padding in rows:
        spec = graph.spec
        print(
            f"{graph.name:<14}{graph.num_nodes:>9}{graph.num_edges:>10}{graph.num_etypes:>9}"
            f"{padding:>10.1f}{spec.paper_nodes:>13}{spec.paper_edges:>13}"
            f"{spec.paper_padding_percent:>12.1f}"
        )

    for graph, padding in rows:
        spec = graph.spec
        assert graph.num_etypes == spec.num_etypes
        assert graph.num_nodes == spec.nodes
        assert 0.0 <= padding < 70.0
