"""Workload-construction helpers shared by the benchmark modules."""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines import cusparse, dgl, dgsparse, sputnik, taco
from repro.formats import CSRMatrix, HybFormat
from repro.ops.sddmm import sddmm_workload
from repro.ops.spmm import spmm_csr_workload, spmm_hyb_workload
from repro.perf.device import DeviceSpec
from repro.perf.gpu_model import GPUModel

#: Feature sizes swept in the SpMM / SDDMM figures.
FEATURE_SIZES = (32, 64, 128, 256, 512)


def geomean(values):
    product = 1.0
    count = 0
    for value in values:
        product *= value
        count += 1
    return product ** (1.0 / count) if count else 0.0


def spmm_system_durations(
    csr: CSRMatrix,
    feat_size: int,
    device: DeviceSpec,
    hyb: Optional[HybFormat] = None,
    hyb_threads: int = 128,
) -> Dict[str, float]:
    """Estimated SpMM durations (us) for every system of Figure 13."""
    model = GPUModel(device)
    hyb = hyb or HybFormat.from_csr(csr, num_col_parts=1)
    return {
        "cuSPARSE": model.estimate(cusparse.spmm_workload(csr, feat_size, device)).duration_us,
        "Sputnik": model.estimate(sputnik.spmm_workload(csr, feat_size, device)).duration_us,
        "dgSPARSE": model.estimate(dgsparse.spmm_workload(csr, feat_size, device)).duration_us,
        "TACO": model.estimate(taco.spmm_workload(csr, feat_size, device)).duration_us,
        "SparseTIR(no-hyb)": model.estimate(
            spmm_csr_workload(csr, feat_size, device)
        ).duration_us,
        "SparseTIR(hyb)": model.estimate(
            spmm_hyb_workload(hyb, feat_size, device, threads_per_block=hyb_threads)
        ).duration_us,
    }


def sddmm_system_durations(csr: CSRMatrix, feat_size: int, device: DeviceSpec) -> Dict[str, float]:
    """Estimated SDDMM durations (us) for every system of Figure 14."""
    model = GPUModel(device)
    return {
        "cuSPARSE": model.estimate(cusparse.sddmm_workload(csr, feat_size, device)).duration_us,
        "Sputnik": model.estimate(
            __import__("repro.baselines.sputnik", fromlist=["x"]).sddmm_workload_graph(csr, feat_size, device)
        ).duration_us,
        "DGL": model.estimate(dgl.sddmm_workload_featgraph(csr, feat_size, device)).duration_us,
        "dgSPARSE-csr": model.estimate(
            dgsparse.sddmm_workload_csr(csr, feat_size, device)
        ).duration_us,
        "dgSPARSE-coo": model.estimate(
            dgsparse.sddmm_workload_coo(csr, feat_size, device)
        ).duration_us,
        "TACO": model.estimate(
            taco.sddmm_workload_scheduled(csr, feat_size, device)
        ).duration_us,
        "SparseTIR": model.estimate(sddmm_workload(csr, feat_size, device)).duration_us,
    }
