"""Autoscheduler wall-clock harness: tuned vs default, analytic vs hybrid.

Drives :meth:`Session.autotune` over the fig-13 SpMM benchmark graphs and
writes ``BENCH_tuning.json`` at the repository root — the artifact the CI
``tune-smoke`` job uploads.  For every graph the harness

1. autotunes the ``spmm`` workload with the two-phase driver under the
   **analytic** cost model, forcing the *current default* hyb configuration
   (``hyb(1, heuristic)``) into the measured set, so the tuned winner is
   **at least as fast as the default by construction** (both are timed in
   the same session, the winner is the minimum) — and feeding the
   measurement corpus as a side effect;
2. re-tunes the same task with ``cost_model="hybrid"``: the residual model
   trained on the pass-1 corpus re-ranks phase 1 and halves the phase-2
   survivor budget, so the hybrid pass must spend **strictly fewer
   wallclock measurements** while still beating the default;
3. re-opens the record store in a fresh :class:`Session` and verifies the
   persisted :class:`TuningRecord` replays with zero model evaluations,
   zero re-measurement, and — with the corpus sitting right there — zero
   cost-model retraining.

``test_tuning_smoke`` (CI lane) runs one small graph; ``test_tuning_full``
(nightly, ``slow``) sweeps every fig-13 graph and writes the committed
full-mode file.
"""

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.perf.learned import RidgeCostModel
from repro.runtime.session import Session
from repro.tune import SpMMProblem, TuningRecordStore
from repro.workloads.graphs import available_graphs, generate_adjacency, synthetic_graph

_ROOT = Path(__file__).resolve().parent.parent
#: The committed file; only the full-mode run writes it.
OUTPUT = _ROOT / "BENCH_tuning.json"
#: Smoke runs write a sibling file (CI renames it before upload).
SMOKE_OUTPUT = _ROOT / "BENCH_tuning.smoke.json"

#: The untuned baseline every row is compared against: the default hyb
#: decomposition (one column partition, heuristic bucket count) at the
#: default thread-block size.
DEFAULT_HYB = {
    "format": "hyb",
    "num_col_parts": 1,
    "num_buckets": None,
    "threads_per_block": 128,
}


def _measured_seconds(history, config_subset):
    """Best measured seconds of the history entry matching *config_subset*."""
    best = None
    for entry in history:
        if entry["phase"] != "measure":
            continue
        if all(entry["config"].get(k) == v for k, v in config_subset.items()):
            value = entry["measured_s"]
            best = value if best is None else min(best, value)
    return best


def _default_seconds(result):
    seconds = _measured_seconds(
        result.history,
        {k: DEFAULT_HYB[k] for k in ("format", "num_col_parts", "num_buckets")},
    )
    assert seconds is not None, "the default hyb config must be measured"
    assert result.best_measured_s is not None
    # The winner is the minimum over a measured set containing the default.
    assert result.best_measured_s <= seconds
    return seconds


def _tune_one(name, csr, feat_size, store, max_trials, survivors, repeats):
    session = Session(persistent=False, tuning_records=store)
    problem = SpMMProblem(csr, feat_size)
    shared = dict(
        max_trials=max_trials,
        survivors=survivors,
        repeats=repeats,
        seed=0,
        include=[dict(DEFAULT_HYB)],
    )
    # Pass A: the analytic cost model, feeding the measurement corpus.
    result = session.autotune("spmm", problem, **shared)
    default_s = _default_seconds(result)

    # Pass B: the hybrid model trained on that corpus re-ranks phase 1 and
    # halves the phase-2 budget — fewer measurements, same guarantee.
    hybrid = session.autotune(
        "spmm", problem, force=True, cost_model="hybrid",
        corpus_min_samples=3, **shared,
    )
    hybrid_default_s = _default_seconds(hybrid)
    assert hybrid.record.metadata["corpus_samples"] >= 3
    assert hybrid.timed_runs < result.timed_runs, (
        "the confident hybrid model must spend fewer wallclock measurements"
    )

    # Acceptance: a fresh process/session replays the persisted record with
    # zero re-measurement — and, even asked for the learned ranking with a
    # populated corpus on disk, zero cost-model retraining.
    fresh = Session(persistent=False, tuning_records=store)
    fits_before = RidgeCostModel.fit_count
    replay = fresh.autotune("spmm", problem, cost_model="hybrid")
    assert replay.replayed and replay.evaluated == 0
    assert RidgeCostModel.fit_count == fits_before, "replay must not retrain"
    assert fresh.stats.runs == 0
    assert replay.best_config == hybrid.best_config

    row = {
        "graph": name,
        "nodes": csr.rows,
        "nnz": csr.nnz,
        "feat_size": feat_size,
        "evaluated": result.evaluated,
        "default_config": dict(DEFAULT_HYB),
        "default_measured_s": default_s,
        "tuned_config": result.best_config,
        "tuned_predicted_us": result.best_predicted_us,
        "tuned_measured_s": result.best_measured_s,
        "speedup_vs_default": default_s / result.best_measured_s,
        "analytic_measured_configs": result.measured_configs,
        "analytic_timed_runs": result.timed_runs,
        "hybrid_config": hybrid.best_config,
        "hybrid_measured_s": hybrid.best_measured_s,
        "hybrid_speedup_vs_default": hybrid_default_s / hybrid.best_measured_s,
        "hybrid_measured_configs": hybrid.measured_configs,
        "hybrid_timed_runs": hybrid.timed_runs,
        "replay_verified": True,
    }
    print(
        f"{name:16s} tuned {result.best_measured_s * 1e3:8.3f} ms  "
        f"default {default_s * 1e3:8.3f} ms  "
        f"x{row['speedup_vs_default']:.2f}  "
        f"hybrid x{row['hybrid_speedup_vs_default']:.2f} "
        f"({hybrid.timed_runs}/{result.timed_runs} timed runs)  "
        f"cfg={result.best_config}"
    )
    return row


def _run_suite(mode, graphs, feat_size, output, max_trials, survivors, repeats):
    results = []
    with tempfile.TemporaryDirectory() as tmp:
        store = TuningRecordStore(tmp)
        for name, csr in graphs:
            results.append(
                _tune_one(name, csr, feat_size, store, max_trials, survivors, repeats)
            )
    speedups = [row["speedup_vs_default"] for row in results]
    hybrid_speedups = [row["hybrid_speedup_vs_default"] for row in results]
    analytic_runs = sum(row["analytic_timed_runs"] for row in results)
    hybrid_runs = sum(row["hybrid_timed_runs"] for row in results)
    payload = {
        "schema": 2,
        "harness": "benchmarks/test_tuning.py",
        "mode": mode,
        "workload": "spmm",
        "numpy": np.__version__,
        "results": results,
        "summary": {
            "graphs": len(results),
            "geomean_speedup_vs_default": float(np.exp(np.mean(np.log(speedups)))),
            "min_speedup_vs_default": float(min(speedups)),
            "hybrid_geomean_speedup_vs_default": float(
                np.exp(np.mean(np.log(hybrid_speedups)))
            ),
            "hybrid_min_speedup_vs_default": float(min(hybrid_speedups)),
            "analytic_timed_runs": analytic_runs,
            "hybrid_timed_runs": hybrid_runs,
        },
    }
    # The learned model's acceptance gate: equal-or-better geomean on a
    # strictly smaller wallclock budget.
    assert hybrid_runs < analytic_runs
    assert payload["summary"]["hybrid_min_speedup_vs_default"] >= 1.0
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nwrote {output} (geomean tuned vs default hyb: "
        f"x{payload['summary']['geomean_speedup_vs_default']:.2f}; hybrid "
        f"x{payload['summary']['hybrid_geomean_speedup_vs_default']:.2f} "
        f"on {hybrid_runs}/{analytic_runs} timed runs)"
    )
    return payload


@pytest.mark.figure("tuning")
def test_tuning_smoke():
    """Bounded autotune on one small graph — the CI ``tune-smoke`` job."""
    graph = generate_adjacency(400, 3200, "powerlaw", seed=5)
    payload = _run_suite(
        "smoke", [("powerlaw-400", graph)], feat_size=16, output=SMOKE_OUTPUT,
        max_trials=12, survivors=3, repeats=2,
    )
    assert SMOKE_OUTPUT.exists()
    assert payload["summary"]["min_speedup_vs_default"] >= 1.0


@pytest.mark.slow
@pytest.mark.bench  # also auto-applied by benchmarks/conftest.py; explicit here
@pytest.mark.figure("tuning")
def test_tuning_full():
    """Every fig-13 graph; the committed ``BENCH_tuning.json`` comes from
    this run.  Acceptance: on each graph the tuned decomposition is at least
    as fast as the default hyb config, and the persisted TuningRecord
    replays without re-measurement."""
    graphs = [
        (name, synthetic_graph(name, seed=0).to_csr()) for name in available_graphs()
    ]
    payload = _run_suite(
        "full", graphs, feat_size=32, output=OUTPUT,
        max_trials=24, survivors=4, repeats=3,
    )
    assert payload["summary"]["min_speedup_vs_default"] >= 1.0
