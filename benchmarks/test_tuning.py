"""Autoscheduler wall-clock harness: tuned vs default decompositions.

Drives :meth:`Session.autotune` over the fig-13 SpMM benchmark graphs and
writes ``BENCH_tuning.json`` at the repository root — the artifact the CI
``tune-smoke`` job uploads.  For every graph the harness

1. autotunes the ``spmm`` workload with the two-phase driver, forcing the
   *current default* hyb configuration (``hyb(1, heuristic)``) into the
   measured set, so the tuned winner is **at least as fast as the default
   by construction** (both are timed in the same session, the winner is the
   minimum);
2. records the tuned configuration, its predicted cost and measured
   wallclock next to the default's;
3. re-opens the record store in a fresh :class:`Session` and verifies the
   persisted :class:`TuningRecord` replays with zero model evaluations and
   zero re-measurement.

``test_tuning_smoke`` (CI lane) runs one small graph; ``test_tuning_full``
(nightly, ``slow``) sweeps every fig-13 graph and writes the committed
full-mode file.
"""

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.runtime.session import Session
from repro.tune import SpMMProblem, TuningRecordStore
from repro.workloads.graphs import available_graphs, generate_adjacency, synthetic_graph

_ROOT = Path(__file__).resolve().parent.parent
#: The committed file; only the full-mode run writes it.
OUTPUT = _ROOT / "BENCH_tuning.json"
#: Smoke runs write a sibling file (CI renames it before upload).
SMOKE_OUTPUT = _ROOT / "BENCH_tuning.smoke.json"

#: The untuned baseline every row is compared against: the default hyb
#: decomposition (one column partition, heuristic bucket count) at the
#: default thread-block size.
DEFAULT_HYB = {
    "format": "hyb",
    "num_col_parts": 1,
    "num_buckets": None,
    "threads_per_block": 128,
}


def _measured_seconds(history, config_subset):
    """Best measured seconds of the history entry matching *config_subset*."""
    best = None
    for entry in history:
        if entry["phase"] != "measure":
            continue
        if all(entry["config"].get(k) == v for k, v in config_subset.items()):
            value = entry["measured_s"]
            best = value if best is None else min(best, value)
    return best


def _tune_one(name, csr, feat_size, store, max_trials, survivors, repeats):
    session = Session(persistent=False, tuning_records=store)
    problem = SpMMProblem(csr, feat_size)
    result = session.autotune(
        "spmm",
        problem,
        max_trials=max_trials,
        survivors=survivors,
        repeats=repeats,
        seed=0,
        include=[dict(DEFAULT_HYB)],
    )
    default_s = _measured_seconds(
        result.history,
        {k: DEFAULT_HYB[k] for k in ("format", "num_col_parts", "num_buckets")},
    )
    assert default_s is not None, "the default hyb config must be measured"
    assert result.best_measured_s is not None
    # The winner is the minimum over a measured set containing the default.
    assert result.best_measured_s <= default_s

    # Acceptance: a fresh process/session replays the persisted record with
    # zero re-measurement.
    fresh = Session(persistent=False, tuning_records=store)
    replay = fresh.autotune("spmm", problem)
    assert replay.replayed and replay.evaluated == 0
    assert fresh.stats.runs == 0
    assert replay.best_config == result.best_config

    row = {
        "graph": name,
        "nodes": csr.rows,
        "nnz": csr.nnz,
        "feat_size": feat_size,
        "evaluated": result.evaluated,
        "default_config": dict(DEFAULT_HYB),
        "default_measured_s": default_s,
        "tuned_config": result.best_config,
        "tuned_predicted_us": result.best_predicted_us,
        "tuned_measured_s": result.best_measured_s,
        "speedup_vs_default": default_s / result.best_measured_s,
        "replay_verified": True,
    }
    print(
        f"{name:16s} tuned {result.best_measured_s * 1e3:8.3f} ms  "
        f"default {default_s * 1e3:8.3f} ms  "
        f"x{row['speedup_vs_default']:.2f}  cfg={result.best_config}"
    )
    return row


def _run_suite(mode, graphs, feat_size, output, max_trials, survivors, repeats):
    results = []
    with tempfile.TemporaryDirectory() as tmp:
        store = TuningRecordStore(tmp)
        for name, csr in graphs:
            results.append(
                _tune_one(name, csr, feat_size, store, max_trials, survivors, repeats)
            )
    speedups = [row["speedup_vs_default"] for row in results]
    payload = {
        "schema": 1,
        "harness": "benchmarks/test_tuning.py",
        "mode": mode,
        "workload": "spmm",
        "numpy": np.__version__,
        "results": results,
        "summary": {
            "graphs": len(results),
            "geomean_speedup_vs_default": float(np.exp(np.mean(np.log(speedups)))),
            "min_speedup_vs_default": float(min(speedups)),
        },
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nwrote {output} (geomean tuned vs default hyb: "
        f"x{payload['summary']['geomean_speedup_vs_default']:.2f})"
    )
    return payload


@pytest.mark.figure("tuning")
def test_tuning_smoke():
    """Bounded autotune on one small graph — the CI ``tune-smoke`` job."""
    graph = generate_adjacency(400, 3200, "powerlaw", seed=5)
    payload = _run_suite(
        "smoke", [("powerlaw-400", graph)], feat_size=16, output=SMOKE_OUTPUT,
        max_trials=12, survivors=3, repeats=2,
    )
    assert SMOKE_OUTPUT.exists()
    assert payload["summary"]["min_speedup_vs_default"] >= 1.0


@pytest.mark.slow
@pytest.mark.bench  # also auto-applied by benchmarks/conftest.py; explicit here
@pytest.mark.figure("tuning")
def test_tuning_full():
    """Every fig-13 graph; the committed ``BENCH_tuning.json`` comes from
    this run.  Acceptance: on each graph the tuned decomposition is at least
    as fast as the default hyb config, and the persisted TuningRecord
    replays without re-measurement."""
    graphs = [
        (name, synthetic_graph(name, seed=0).to_csr()) for name in available_graphs()
    ]
    payload = _run_suite(
        "full", graphs, feat_size=32, output=OUTPUT,
        max_trials=24, survivors=4, repeats=3,
    )
    assert payload["summary"]["min_speedup_vs_default"] >= 1.0
