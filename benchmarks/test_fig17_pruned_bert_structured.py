"""Figure 17: SpMM on block-pruned (structured) BERT weights vs density."""

import pytest

from repro.baselines import triton
from repro.baselines.cublas import gemm_workload
from repro.formats import BSRMatrix, DBSRMatrix
from repro.ops.pruned_spmm import pruned_spmm_bsr_workload, pruned_spmm_dbsr_workload
from repro.perf.gpu_model import GPUModel
from repro.workloads.pruning import SEQUENCE_LENGTH, block_pruned_weight, density_sweep

ROWS, COLS, BLOCK = 768, 768, 32
SYSTEMS = ("SparseTIR(BSR)", "SparseTIR(DBSR)", "Triton", "cuBLAS")


@pytest.mark.figure("fig17")
def test_fig17_block_pruned_spmm(benchmark, device):
    model = GPUModel(device)
    densities = density_sweep("block")

    def run():
        dense_time = model.estimate(
            gemm_workload(ROWS, SEQUENCE_LENGTH, COLS, device, dtype="float16")
        ).duration_us
        table = {}
        for density in densities:
            weight = block_pruned_weight(ROWS, COLS, BLOCK, density, seed=0)
            bsr = BSRMatrix.from_csr(weight, BLOCK)
            dbsr = DBSRMatrix.from_bsr(bsr)
            table[density] = {
                "SparseTIR(BSR)": dense_time
                / model.estimate(pruned_spmm_bsr_workload(bsr, SEQUENCE_LENGTH, device)).duration_us,
                "SparseTIR(DBSR)": dense_time
                / model.estimate(pruned_spmm_dbsr_workload(dbsr, SEQUENCE_LENGTH, device)).duration_us,
                "Triton": dense_time
                / model.estimate(triton.bsrmm_workload(bsr, SEQUENCE_LENGTH, device)).duration_us,
                "cuBLAS": 1.0,
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\n=== Figure 17 ({device.name}): block-pruned SpMM speedup vs cuBLAS ===")
    header = f"{'density':>10}" + "".join(f"{s:>18}" for s in SYSTEMS)
    print(header)
    for density in densities:
        row = table[density]
        print(f"{density:>10.4f}" + "".join(f"{row[s]:>18.2f}" for s in SYSTEMS))

    # Shape checks from the paper: DBSR consistently beats BSR (it skips the
    # empty block rows), SparseTIR's DBSR kernel beats Triton's BSRMM, and the
    # advantage over the dense GEMM grows as density falls.
    for density in densities:
        assert table[density]["SparseTIR(DBSR)"] >= table[density]["SparseTIR(BSR)"] * 0.99
        assert table[density]["SparseTIR(DBSR)"] >= table[density]["Triton"]
    assert table[densities[0]]["SparseTIR(DBSR)"] > table[densities[-1]]["SparseTIR(DBSR)"]
    assert table[densities[0]]["SparseTIR(DBSR)"] > 1.0
