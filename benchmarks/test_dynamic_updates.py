"""Dynamic-update harness: incremental overlay vs full rebuild.

This harness measures the *dynamic-sparsity tentpole*: the claim that a
structure-update window (a batch of edge edits followed by an SpMM on the
updated matrix) is cheaper through the epoch-versioned delta path —
O(delta) edits plus a base-plan + overlay execution against the *warm*
cached kernel — than through the classical full-rebuild path, which
re-canonicalises the matrix and pays a cold lower/compile for the new
structure every window.

Methodology: each workload streams *update rounds* over a fig-13 graph.
A round inserts ``k`` fresh edges (and, from the second round on, deletes
``k/4`` previously inserted ones), then executes one SpMM on the updated
matrix.  Both modes apply the *same* edit script to their own matrix:

* **incremental** — edits go through :meth:`CSRMatrix.insert_edges` /
  :meth:`~CSRMatrix.delete_edges` (delta log, epoch bump) and the SpMM
  runs as base plan + overlay in a persistent session whose base kernel
  stays warm (the edit volume stays under the auto-compaction threshold,
  so the base snapshot never changes during the window);
* **rebuild** — edits are folded into a fresh canonical ``CSRMatrix``
  (merge + re-validation) and the SpMM runs through a session that has
  never seen the new structure, paying the cold kernel lowering that any
  epoch-unaware cache would pay per mutation.

Rounds run in interleaved pairs (incremental, then rebuild, same edits)
so allocator/cache drift biases neither side; per round each mode's cost
is ``edit + execute`` wall time; the per-workload ratio is
``median(rebuild) / median(incremental)``; every round's two outputs are
asserted bit-exact against each other (the overlay's conformance claim,
see ``tests/test_dynamic.py``).  The incremental session must serve every
measured round from the kernel cache — unchanged-epoch execution does no
compilation — which is asserted, not assumed.

``test_dynamic_smoke`` runs one scaled-down workload for the CI
``dynamic-smoke`` lane (writes ``BENCH_dynamic.smoke.json``);
``test_dynamic_full`` commits ``BENCH_dynamic.json`` with an incremental
speedup geomean gate of 1.3x.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.runtime.session import Session
from repro.workloads.graphs import synthetic_graph

_ROOT = Path(__file__).resolve().parent.parent
#: The committed perf-trajectory file; only the full-mode run writes it.
OUTPUT = _ROOT / "BENCH_dynamic.json"
#: Smoke runs write a sibling (gitignored) file so a local smoke run never
#: clobbers the committed full-mode numbers; CI renames it before upload.
SMOKE_OUTPUT = _ROOT / "BENCH_dynamic.smoke.json"

SMOKE_CONFIG = {
    # graph, feat, edits per round
    "workloads": [("cora", 4, 32)],
    "rounds": 3,
}

FULL_CONFIG = {
    # Update-window shapes on the fig-13 graphs: small edit batches (well
    # under the 25% auto-compaction threshold across the whole run) and the
    # narrow feature widths where per-window compile cost is not amortised
    # away by a huge execute — exactly the regime dynamic graphs live in.
    "workloads": [
        ("cora", 4, 64),
        ("cora", 8, 64),
        ("citeseer", 4, 64),
        ("citeseer", 8, 64),
        ("pubmed", 4, 128),
    ],
    "rounds": 7,
}


def _fresh_copy(csr):
    """A private mutable CSRMatrix over the (frozen, shared) graph arrays."""
    return CSRMatrix(csr.shape, csr.indptr, csr.indices, csr.data, dtype=csr.dtype)


def _edit_stream(csr, edits_per_round, rounds, seed):
    """Deterministic per-round edit scripts: (inserts, deletes) coordinate lists.

    Inserts target coordinates absent from the evolving edge set; deletes
    (from the second round on) remove a quarter of the previous round's
    inserts — the churn pattern of a streaming-graph window.
    """
    rng = np.random.default_rng(seed)
    present = set(
        (int(r), int(c))
        for r, c in zip(
            np.repeat(np.arange(csr.rows), np.diff(csr.indptr)), csr.indices
        )
    )
    scripts = []
    previous = []
    for _ in range(rounds):
        inserts = []
        while len(inserts) < edits_per_round:
            r = int(rng.integers(csr.rows))
            c = int(rng.integers(csr.cols))
            if (r, c) not in present:
                present.add((r, c))
                inserts.append((r, c))
        deletes = previous[: edits_per_round // 4]
        for rc in deletes:
            present.discard(rc)
        scripts.append((inserts, deletes))
        previous = inserts
    return scripts


def _apply(matrix, inserts, deletes, values):
    if inserts:
        matrix.insert_edges(
            [r for r, _ in inserts], [c for _, c in inserts], values
        )
    if deletes:
        matrix.delete_edges([r for r, _ in deletes], [c for _, c in deletes])


def _bench_workload(graph_name, feat, edits, rounds, seed=42):
    base = synthetic_graph(graph_name).csr
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((base.cols, feat)).astype(np.float32)
    # One warmup round plus the measured rounds, same scripts for both modes.
    scripts = _edit_stream(base, edits, rounds + 1, seed)
    values = [
        rng.standard_normal(len(ins)).astype(np.float32) for ins, _ in scripts
    ]

    inc_session = Session(persistent=False)
    reb_session = Session(persistent=False)
    inc = _fresh_copy(base)
    reb = _fresh_copy(base)

    # Warmup: compile the incremental base kernel and one rebuild kernel.
    _apply(inc, *scripts[0], values[0])
    inc_out = inc_session.spmm(inc, x)
    _apply(reb, *scripts[0], values[0])
    reb.compact()
    reb_out = reb_session.spmm(_fresh_copy(reb), x)
    exact = np.array_equal(inc_out, reb_out)

    misses_before = inc_session.stats.kernel_cache_misses
    hits_before = inc_session.stats.kernel_cache_hits
    inc_s, reb_s = [], []
    for (inserts, deletes), vals in zip(scripts[1:], values[1:]):
        start = time.perf_counter()
        _apply(inc, inserts, deletes, vals)
        inc_out = inc_session.spmm(inc, x)
        inc_s.append(time.perf_counter() - start)

        start = time.perf_counter()
        _apply(reb, inserts, deletes, vals)
        reb.compact()
        rebuilt = _fresh_copy(reb)
        reb_out = reb_session.spmm(rebuilt, x)
        reb_s.append(time.perf_counter() - start)
        exact = exact and np.array_equal(inc_out, reb_out)

    # The dynamic contract: every measured incremental round ran against the
    # warm base kernel — unchanged epoch of the base snapshot, zero compiles.
    warm = inc_session.stats.kernel_cache_misses == misses_before
    kernel_hits = inc_session.stats.kernel_cache_hits - hits_before
    inc_ms = float(np.median(inc_s)) * 1e3
    reb_ms = float(np.median(reb_s)) * 1e3
    return {
        "workload": f"{graph_name}-f{feat}-k{edits}",
        "graph": graph_name,
        "nnz": int(base.nnz),
        "feat": feat,
        "edits_per_round": edits,
        "final_drift": round(inc.drift_ratio, 4),
        "incremental_ms": inc_ms,
        "rebuild_ms": reb_ms,
        "speedup": reb_ms / inc_ms,
        "overlay_runs": inc_session.stats.overlay_runs,
        "warm_kernel_hits": int(kernel_hits),
        "kernel_stayed_warm": bool(warm),
        "bit_exact": bool(exact),
    }


def _run_suite(mode, config, output):
    results = []
    for graph_name, feat, edits in config["workloads"]:
        entry = _bench_workload(graph_name, feat, edits, config["rounds"])
        results.append(entry)
        print(
            f"{entry['workload']:20s} incremental {entry['incremental_ms']:7.2f} ms  "
            f"rebuild {entry['rebuild_ms']:7.2f} ms  x{entry['speedup']:.2f}   "
            f"warm={entry['kernel_stayed_warm']} hits={entry['warm_kernel_hits']} "
            f"exact={entry['bit_exact']}"
        )
        assert entry["bit_exact"], entry["workload"]
        assert entry["kernel_stayed_warm"], entry["workload"]
        assert entry["warm_kernel_hits"] >= config["rounds"]
    speedups = [r["speedup"] for r in results]
    payload = {
        "schema": 1,
        "harness": "benchmarks/test_dynamic_updates.py",
        "mode": mode,
        "numpy": np.__version__,
        "methodology": (
            "interleaved paired update rounds (same edit script both modes); "
            "per-round cost = edits + one SpMM; incremental = delta log + "
            "base-plan/overlay on a warm session, rebuild = compact + fresh "
            "CSRMatrix + cold-structure SpMM; ratio = median(rebuild ms) / "
            "median(incremental ms); outputs asserted bit-exact per round"
        ),
        "results": results,
        "summary": {
            "geomean_incremental_speedup": float(np.exp(np.mean(np.log(speedups)))),
            "min_incremental_speedup": float(min(speedups)),
            "max_incremental_speedup": float(max(speedups)),
        },
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output} (geomean incremental speedup: "
          f"x{payload['summary']['geomean_incremental_speedup']:.2f})")
    return payload


@pytest.mark.figure("dynamic")
def test_dynamic_smoke():
    """One scaled-down update stream for the CI ``dynamic-smoke`` job.

    Smoke asserts the dynamic contract (bit-exact rounds, warm kernel
    cache) but not the speedup gate: at toy sizes the ratio is
    noise-dominated.
    """
    payload = _run_suite("smoke", SMOKE_CONFIG, SMOKE_OUTPUT)
    assert SMOKE_OUTPUT.exists()
    for row in payload["results"]:
        assert row["incremental_ms"] > 0 and row["rebuild_ms"] > 0


@pytest.mark.slow
@pytest.mark.bench  # also auto-applied by benchmarks/conftest.py; explicit here
@pytest.mark.figure("dynamic")
def test_dynamic_full():
    """Fig-13-graph update streams; the committed ``BENCH_dynamic.json``
    comes from this run.  Incremental updates must beat full rebuilds by
    >= 1.3x geomean per-round wall time across the workloads."""
    payload = _run_suite("full", FULL_CONFIG, OUTPUT)
    assert payload["summary"]["geomean_incremental_speedup"] >= 1.3
