"""Figure 13: SpMM speedup over cuSPARSE across GNN graphs and systems.

For every graph of Table 1 the benchmark evaluates cuSPARSE, Sputnik,
dgSPARSE, TACO, SparseTIR without format decomposition, and SparseTIR with
the tuned ``hyb`` format, and reports the geometric-mean speedup over
cuSPARSE across the paper's feature sizes {32, 64, 128, 256, 512}.
"""

import pytest

from bench_helpers import FEATURE_SIZES, geomean, spmm_system_durations
from conftest import print_speedup_table
from repro.formats.hyb import HybFormat
from repro.tune import tune_spmm
from repro.workloads.graphs import available_graphs, synthetic_graph

SYSTEMS = ("cuSPARSE", "Sputnik", "dgSPARSE", "TACO", "SparseTIR(no-hyb)", "SparseTIR(hyb)")

#: Paper-reported geometric-mean speedups of SparseTIR(hyb) vs cuSPARSE.
PAPER_HYB_SPEEDUP = {
    "V100": {"cora": 2.3, "citeseer": 2.3, "pubmed": 1.6, "ppi": 1.2, "ogbn-arxiv": 1.4,
             "ogbn-proteins": 1.3, "reddit": 1.5},
    "RTX3070": {"cora": 1.9, "citeseer": 1.8, "pubmed": 1.6, "ppi": 1.2, "ogbn-arxiv": 1.3,
                "ogbn-proteins": 1.5, "reddit": 1.6},
}


@pytest.mark.figure("fig13")
def test_fig13_spmm_speedup_vs_cusparse(benchmark, device):
    graphs = {name: synthetic_graph(name, seed=0) for name in available_graphs()}

    def run():
        table = {}
        for name, graph in graphs.items():
            csr = graph.to_csr()
            # Tune the composable format once per graph (amortised, as in §2).
            result = tune_spmm(csr, 128, device, max_trials=16, seed=0)
            hyb = HybFormat.from_csr(
                csr,
                num_col_parts=result.best_config["num_col_parts"],
                num_buckets=result.best_config["num_buckets"],
            )
            speedups = {system: [] for system in SYSTEMS}
            for feat in FEATURE_SIZES:
                durations = spmm_system_durations(
                    csr, feat, device, hyb=hyb,
                    hyb_threads=result.best_config["threads_per_block"],
                )
                base = durations["cuSPARSE"]
                for system in SYSTEMS:
                    speedups[system].append(base / durations[system])
            table[name] = {system: geomean(values) for system, values in speedups.items()}
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_speedup_table(
        f"Figure 13 ({device.name}): SpMM geomean speedup vs cuSPARSE",
        list(graphs), SYSTEMS, table,
        note="feature sizes {32,64,128,256,512}; paper reports 1.2-2.3x for SparseTIR(hyb)",
    )
    print("paper SparseTIR(hyb) reference:", PAPER_HYB_SPEEDUP[device.name])

    # Shape checks.  On the power-law citation/social graphs the tuned
    # composable-format kernel beats the vendor library and the
    # no-decomposition ablation, as in the paper.  The reddit/ogbn-proteins
    # instances are scaled down so far that the dense operand fits in L2,
    # which removes the column-partitioning advantage the full-size graphs
    # enjoy (see EXPERIMENTS.md); there the requirement is only that hyb
    # stays within ~30% of cuSPARSE.
    for name in ("cora", "citeseer", "pubmed", "ogbn-arxiv"):
        assert table[name]["SparseTIR(hyb)"] >= 1.0
    for name, row in table.items():
        assert row["SparseTIR(hyb)"] >= 0.65
    assert table["ogbn-arxiv"]["SparseTIR(hyb)"] > table["ogbn-arxiv"]["SparseTIR(no-hyb)"]
    assert table["ppi"]["SparseTIR(hyb)"] > table["ppi"]["SparseTIR(no-hyb)"]
