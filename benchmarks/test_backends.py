"""Backend-tier wall-clock harness: interpreter / vectorized / emitted / native.

Unlike the other benchmark modules (which drive the GPU *performance model*),
this harness measures real execution time of the four dispatch tiers on the
executable fig-13 (graph SpMM), fig-14 (graph SDDMM) and fig-16
(sparse-attention) workloads, and writes ``BENCH_backends.json`` at the
repository root — the perf trajectory the CI ``bench-smoke`` job uploads as
an artifact.

Two entry points share one implementation: ``test_backend_smoke`` runs tiny
shapes (seconds; the CI smoke lane), ``test_backend_full`` runs the
paper-scale shapes and is additionally marked ``slow``.  Kernels are built
once per structure through a :class:`Session` (compile-once), then each tier
is timed on the cached kernel; the interpreter is skipped (reported as
``null``) above a lane budget where a single scalar-interpreted run would
dominate the whole harness.

The native (compiled C) column needs care the slower tiers do not: its
margin over the emitted tier is the one this harness gates on, and both
closures co-reside in one process whose allocator/cache state drifts over a
run.  Native and emitted are therefore measured in *interleaved paired
rounds* (alternate single runs, median per tier) and the reported ratio is
``median(emitted) / median(native)`` — the same methodology as
``benchmarks/test_graph_fusion.py``.  On a machine without a C toolchain
the native column is recorded as ``null`` and the harness still passes
(graceful fallback is part of the acceptance contract).  Every workload
with a native run also asserts bit-exact (``np.array_equal``) agreement
with the emitted tier.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.ops.batched import build_batched_sddmm_program, build_batched_spmm_program
from repro.ops.sddmm import build_sddmm_program
from repro.ops.spmm import build_spmm_hyb_program, build_spmm_program
from repro.runtime.session import Session
from repro.workloads.attention import band_mask
from repro.workloads.graphs import generate_adjacency

_ROOT = Path(__file__).resolve().parent.parent
#: The committed perf-trajectory file; only the full-mode run writes it.
OUTPUT = _ROOT / "BENCH_backends.json"
#: Smoke runs write a sibling (gitignored) file so a local smoke run never
#: clobbers the committed full-mode numbers; CI renames it before upload.
SMOKE_OUTPUT = _ROOT / "BENCH_backends.smoke.json"

#: Above this many lanes (iteration-space points) a scalar-interpreted run is
#: minutes long; the harness reports ``null`` for the interpreter instead.
INTERPRETER_LANE_BUDGET = 600_000

SMOKE_SHAPES = {
    "fig13-spmm": [(200, 1_600, 16)],
    "fig14-sddmm": [(200, 1_600, 16)],
    "fig16-attention": [(128, 16, 2, 8)],  # seq, band, heads, feat
}

FULL_SHAPES = {
    # The first fig-13 shape stays under INTERPRETER_LANE_BUDGET so the
    # committed JSON carries a measured interpreter column too.
    "fig13-spmm": [(1_000, 15_000, 16), (2_000, 30_000, 32), (5_000, 60_000, 32)],
    "fig14-sddmm": [(2_000, 30_000, 32)],
    "fig16-attention": [(512, 64, 4, 32)],
}


def _best_seconds(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _paired_medians(fn_a, fn_b, rounds):
    """Interleaved paired timing; returns (median a, median b) seconds.

    Alternating single runs sample both closures under the same
    allocator/cache conditions; a block of one then a block of the other
    picks up process drift as a spurious bias in either direction.
    """
    a_times, b_times = [], []
    for _ in range(rounds):
        start = time.perf_counter()
        fn_a()
        a_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        b_times.append(time.perf_counter() - start)
    return float(np.median(a_times)), float(np.median(b_times))


def _time_tiers(kernel, lanes, repeats=3, rounds=9):
    """Seconds per tier on an already-built kernel.

    Emitted / vectorized / interpreter report best-of-N (the historical
    columns); native vs emitted is measured in interleaved paired rounds
    and reported as per-tier medians (``native_s`` / ``emitted_paired_s``).
    ``native_s`` is ``None`` when the tier is unavailable — no toolchain,
    or a program outside the C emitter's fragment.
    """
    from repro.runtime.vectorized import UnsupportedProgram

    timings = {}
    kernel.run(engine="emitted")  # warm-up compiles the plan once
    timings["emitted_s"] = _best_seconds(lambda: kernel.run(engine="emitted"), repeats)
    kernel.run(engine="vectorized")
    timings["vectorized_s"] = _best_seconds(lambda: kernel.run(engine="vectorized"), repeats)
    if lanes <= INTERPRETER_LANE_BUDGET:
        timings["interpreter_s"] = _best_seconds(lambda: kernel.run(engine="interpret"), 1)
    else:
        timings["interpreter_s"] = None
    try:
        kernel.run(engine="native")  # warm-up: compile (or load) the .so once
    except UnsupportedProgram:
        timings["native_s"] = None
        timings["emitted_paired_s"] = None
        return timings
    native_s, emitted_s = _paired_medians(
        lambda: kernel.run(engine="native"),
        lambda: kernel.run(engine="emitted"),
        rounds,
    )
    timings["native_s"] = native_s
    timings["emitted_paired_s"] = emitted_s
    return timings


def _record(results, figure, workload, kernel, lanes, repeats=3, rounds=9):
    timings = _time_tiers(kernel, lanes, repeats, rounds)
    native_speedup = None
    if timings["native_s"] is not None:
        # Acceptance contract: the native tier is bit-exact with the
        # emitted tier on every measured workload.
        emitted_out = kernel.run(engine="emitted")
        native_out = kernel.run(engine="native")
        for name in emitted_out:
            assert emitted_out[name].dtype == native_out[name].dtype, (workload, name)
            assert np.array_equal(emitted_out[name], native_out[name]), (workload, name)
        native_speedup = timings["emitted_paired_s"] / timings["native_s"]
    entry = {
        "figure": figure,
        "workload": workload,
        "lanes": int(lanes),
        **timings,
        "speedup_emitted_vs_vectorized": timings["vectorized_s"] / timings["emitted_s"],
        "speedup_emitted_vs_interpreter": (
            timings["interpreter_s"] / timings["emitted_s"]
            if timings["interpreter_s"]
            else None
        ),
        "speedup_native_vs_emitted": native_speedup,
        # True when measured (asserted above); null when the tier is absent.
        "native_bit_exact": True if native_speedup is not None else None,
    }
    results.append(entry)
    native_col = (
        f"native {timings['native_s'] * 1e3:8.2f} ms   x{native_speedup:.2f} vs emitted"
        if native_speedup is not None
        else "native     (unavailable)"
    )
    print(
        f"{figure:18s} {workload:38s} emitted {timings['emitted_s'] * 1e3:8.2f} ms   "
        f"x{entry['speedup_emitted_vs_vectorized']:.2f} vs vectorized   {native_col}"
    )


def _run_suite(mode, shapes, output):
    session = Session(persistent=False)
    results = []
    rng = np.random.default_rng(0)

    for nodes, edges, feat in shapes["fig13-spmm"]:
        graph = generate_adjacency(nodes, edges, "powerlaw", seed=1)
        feats = rng.standard_normal((graph.cols, feat)).astype(np.float32)
        kernel = session.build(build_spmm_program(graph, feat, feats))
        _record(results, "fig13-spmm", f"powerlaw-n{nodes}-e{edges}-f{feat}-csr",
                kernel, graph.nnz * feat)
        hyb = session.decompose_hyb(graph, num_col_parts=1)
        kernel = session.build(build_spmm_hyb_program(hyb, feat, feats))
        _record(results, "fig13-spmm", f"powerlaw-n{nodes}-e{edges}-f{feat}-hyb",
                kernel, sum(b.stored for b in hyb.buckets) * feat)

    for nodes, edges, feat in shapes["fig14-sddmm"]:
        graph = generate_adjacency(nodes, edges, "powerlaw", seed=2)
        x = rng.standard_normal((graph.rows, feat)).astype(np.float32)
        y = rng.standard_normal((feat, graph.cols)).astype(np.float32)
        kernel = session.build(build_sddmm_program(graph, feat, x, y, fuse_ij=True))
        _record(results, "fig14-sddmm", f"powerlaw-n{nodes}-e{edges}-f{feat}",
                kernel, graph.nnz * feat)

    for seq, band, heads, feat in shapes["fig16-attention"]:
        mask = band_mask(seq, band)
        q = rng.standard_normal((heads, seq, feat)).astype(np.float32)
        k = rng.standard_normal((heads, feat, seq)).astype(np.float32)
        kernel = session.build(
            build_batched_sddmm_program(mask, heads, feat, q, k, scale=1.0 / np.sqrt(feat))
        )
        _record(results, "fig16-attention", f"band-s{seq}-b{band}-h{heads}-f{feat}-sddmm",
                kernel, heads * mask.nnz * feat)
        v = rng.standard_normal((heads, seq, feat)).astype(np.float32)
        kernel = session.build(build_batched_spmm_program(mask, heads, feat, v))
        _record(results, "fig16-attention", f"band-s{seq}-b{band}-h{heads}-f{feat}-spmm",
                kernel, heads * mask.nnz * feat)

    from repro.core.codegen.emit_c import toolchain_available

    speedups = [r["speedup_emitted_vs_vectorized"] for r in results]
    fig13 = [r["speedup_emitted_vs_vectorized"] for r in results if r["figure"] == "fig13-spmm"]
    native = [r["speedup_native_vs_emitted"] for r in results
              if r["speedup_native_vs_emitted"] is not None]
    native_fig13 = [r["speedup_native_vs_emitted"] for r in results
                    if r["figure"] == "fig13-spmm" and r["speedup_native_vs_emitted"] is not None]

    def _geomean(values):
        return float(np.exp(np.mean(np.log(values)))) if values else None

    payload = {
        "schema": 2,
        "harness": "benchmarks/test_backends.py",
        "mode": mode,
        "numpy": np.__version__,
        "tiers": ["native", "emitted", "vectorized", "interpreter"],
        "native_toolchain": toolchain_available(),
        "methodology": {
            "emitted/vectorized/interpreter": "best-of-N single runs",
            "native_vs_emitted": "interleaved paired rounds; "
                                 "ratio = median(emitted)/median(native)",
        },
        "results": results,
        "summary": {
            "geomean_emitted_vs_vectorized": _geomean(speedups),
            "geomean_emitted_vs_vectorized_fig13": _geomean(fig13),
            "min_emitted_vs_vectorized_fig13": float(min(fig13)),
            "geomean_native_vs_emitted": _geomean(native),
            "geomean_native_vs_emitted_fig13": _geomean(native_fig13),
            "min_native_vs_emitted": float(min(native)) if native else None,
        },
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    native_note = (
        f", geomean native vs emitted: x{payload['summary']['geomean_native_vs_emitted']:.2f}"
        if native
        else ", native tier unavailable (no C toolchain)"
    )
    print(f"\nwrote {output} (geomean emitted vs vectorized: "
          f"x{payload['summary']['geomean_emitted_vs_vectorized']:.2f}{native_note})")
    return payload


@pytest.mark.figure("backends")
def test_backend_smoke():
    """Tiny-shape run for the CI ``bench-smoke`` job (artifact upload).

    Smoke asserts structure (positive timings, bit-exact native when
    present) but no speedup gates: toy shapes are noise-dominated.  With no
    C toolchain every native column is ``null`` and the run still passes.
    """
    payload = _run_suite("smoke", SMOKE_SHAPES, SMOKE_OUTPUT)
    assert SMOKE_OUTPUT.exists()
    for row in payload["results"]:
        assert row["emitted_s"] > 0 and row["vectorized_s"] > 0
        assert row["interpreter_s"] is None or row["interpreter_s"] > 0
        assert row["native_s"] is None or row["native_s"] > 0
        if not payload["native_toolchain"]:
            assert row["native_s"] is None


@pytest.mark.slow
@pytest.mark.bench  # also auto-applied by benchmarks/conftest.py; explicit here
@pytest.mark.figure("backends")
def test_backend_full():
    """Paper-scale shapes; the committed ``BENCH_backends.json`` comes from
    this run.  Emitted must clearly beat the per-call-planning vectorized
    tier on the fig-13 SpMM shapes (the compile-once/run-many claim), and —
    when a C toolchain is present — the native tier must beat emitted by
    >= 1.5x geomean on the same shapes (paired-median ratios)."""
    payload = _run_suite("full", FULL_SHAPES, OUTPUT)
    assert payload["summary"]["geomean_emitted_vs_vectorized_fig13"] >= 1.5
    if payload["native_toolchain"]:
        assert payload["summary"]["geomean_native_vs_emitted_fig13"] >= 1.5
