"""Figure 12: effect of hyb column partitioning on cache hit rates and duration.

The paper fixes the feature size to 128 on the Reddit graph and varies the
number of column partitions of the ``hyb`` format: L1/L2 hit rates increase
with more partitions while the kernel duration first drops, then saturates as
the extra output traffic catches up.

The full-size Reddit graph is far beyond a pure-Python run, so this benchmark
uses a synthetic power-law graph whose dense operand (``X``) is several times
the size of the simulated L2 cache — the regime where column partitioning
matters.  Hit rates come from the set-associative LRU cache simulator fed
with a sampled trace of the kernel's X accesses; durations come from the
performance model.
"""

import numpy as np
import pytest

from repro.formats.hyb import HybFormat
from repro.ops.spmm import spmm_hyb_workload
from repro.perf.cache import CacheHierarchy
from repro.perf.device import V100
from repro.perf.gpu_model import GPUModel
from repro.workloads.graphs import generate_adjacency

FEAT_SIZE = 128
PARTITIONS = (1, 2, 4, 8, 16)

#: Paper-reported trend on Reddit (V100): L2 hit rate 24.8% -> 88.8%,
#: duration 64.6ms -> 27.3ms as partitions go from 1 to 16.
PAPER_L2_HIT = {1: 24.8, 2: 29.8, 4: 50.5, 8: 73.3, 16: 88.8}


def _x_row_trace(hyb: HybFormat, sample_stride: int = 2) -> np.ndarray:
    """Sampled trace of X-row accesses (one address per gathered row)."""
    row_bytes = FEAT_SIZE * 4
    addresses = []
    for bucket in hyb.buckets:
        cols = bucket.ell.indices[::sample_stride].reshape(-1)
        cols = cols[cols >= 0] + bucket.col_offset
        addresses.append(cols * row_bytes)
    return np.concatenate(addresses) if addresses else np.zeros(0, dtype=np.int64)


@pytest.mark.figure("fig12")
def test_fig12_column_partitioning_cache_behaviour(benchmark):
    # X occupies feat * 4 * nodes = 12 MB >> 6 MB of V100 L2.
    graph = generate_adjacency(24000, 360000, "powerlaw", seed=21)
    model = GPUModel(V100)

    def run():
        series = {}
        for parts in PARTITIONS:
            hyb = HybFormat.from_csr(graph, num_col_parts=parts, num_buckets=5)
            hierarchy = CacheHierarchy(
                l1_bytes=V100.l1_bytes_per_sm,
                l2_bytes=V100.l2_bytes,
                line_bytes=FEAT_SIZE * 4,
                num_l1=8,
            )
            trace = _x_row_trace(hyb)
            slots = np.arange(len(trace)) % 8
            stats = hierarchy.run_trace(trace, slots)
            duration = model.estimate(spmm_hyb_workload(hyb, FEAT_SIZE, V100)).duration_us
            series[parts] = {
                "l1_hit_percent": 100.0 * stats["l1"].hit_rate,
                "l2_hit_percent": 100.0 * stats["l2"].hit_rate,
                "duration_us": duration,
            }
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== Figure 12: column partitions vs cache hit rate and duration (V100) ===")
    print(f"{'#partitions':>12}{'L1 hit %':>12}{'L2 hit %':>12}{'duration (us)':>16}{'paper L2 %':>12}")
    for parts in PARTITIONS:
        row = series[parts]
        print(f"{parts:>12}{row['l1_hit_percent']:>12.1f}{row['l2_hit_percent']:>12.1f}"
              f"{row['duration_us']:>16.1f}{PAPER_L2_HIT[parts]:>12.1f}")

    # Shape: column partitioning lifts the cache hit rates (the L1 rate grows
    # monotonically; the L2 rate jumps once the partition's slice of X fits),
    # and the best partitioned configuration beats the unpartitioned kernel —
    # with the benefit saturating as the extra output traffic catches up,
    # exactly the saturation the paper describes.
    l1 = [series[p]["l1_hit_percent"] for p in PARTITIONS]
    assert all(b >= a - 1e-6 for a, b in zip(l1, l1[1:]))
    l2_first = series[PARTITIONS[0]]["l2_hit_percent"]
    assert all(series[p]["l2_hit_percent"] > l2_first + 10 for p in PARTITIONS[1:])
    durations = [series[p]["duration_us"] for p in PARTITIONS]
    assert min(durations[1:]) < durations[0]
