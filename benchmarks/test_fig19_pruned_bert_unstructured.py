"""Figure 19: SpMM on unstructured (movement) pruned BERT weights vs density,
plus the new-format density of SR-BCRS and BSR (right panel)."""

import pytest

from repro.baselines.cublas import gemm_workload
from repro.baselines.cusparse import csrmm_pruned_workload
from repro.formats import BSRMatrix, SRBCRSMatrix
from repro.ops.pruned_spmm import pruned_spmm_bsr_workload, pruned_spmm_srbcrs_workload
from repro.perf.gpu_model import GPUModel
from repro.workloads.pruning import SEQUENCE_LENGTH, density_sweep, unstructured_pruned_weight

ROWS, COLS = 768, 768
SYSTEMS = ("SparseTIR(SR-BCRS)", "SparseTIR(BSR)", "cuSPARSE", "cuBLAS")


@pytest.mark.figure("fig19")
def test_fig19_unstructured_pruned_spmm(benchmark, device):
    model = GPUModel(device)
    densities = density_sweep("unstructured")

    def run():
        dense_time = model.estimate(
            gemm_workload(ROWS, SEQUENCE_LENGTH, COLS, device, dtype="float16")
        ).duration_us
        table = {}
        formats = {}
        for density in densities:
            weight = unstructured_pruned_weight(ROWS, COLS, density, seed=0)
            sr = SRBCRSMatrix(weight, tile_rows=8, group_size=32)
            bsr = BSRMatrix.from_csr(weight, 32)
            table[density] = {
                "SparseTIR(SR-BCRS)": dense_time
                / model.estimate(pruned_spmm_srbcrs_workload(sr, SEQUENCE_LENGTH, device)).duration_us,
                "SparseTIR(BSR)": dense_time
                / model.estimate(pruned_spmm_bsr_workload(bsr, SEQUENCE_LENGTH, device)).duration_us,
                "cuSPARSE": dense_time
                / model.estimate(csrmm_pruned_workload(weight, SEQUENCE_LENGTH, device)).duration_us,
                "cuBLAS": 1.0,
            }
            formats[density] = {
                "SR-BCRS(8,32)": sr.new_format_density,
                "BSR(32)": bsr.nnz_stored / (ROWS * COLS),
                "original": weight.density,
            }
        return table, formats

    table, formats = benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\n=== Figure 19 ({device.name}): unstructured pruned SpMM speedup vs cuBLAS ===")
    print(f"{'density':>10}" + "".join(f"{s:>20}" for s in SYSTEMS))
    for density in densities:
        row = table[density]
        print(f"{density:>10.4f}" + "".join(f"{row[s]:>20.2f}" for s in SYSTEMS))

    print("\n--- new-format density (right panel of Figure 19) ---")
    print(f"{'density':>10}{'SR-BCRS(8,32)':>16}{'BSR(32)':>12}")
    for density in densities:
        print(f"{density:>10.4f}{formats[density]['SR-BCRS(8,32)']:>16.3f}"
              f"{formats[density]['BSR(32)']:>12.3f}")

    # Shape checks: SR-BCRS beats BSR at low densities (less fragmentation)
    # and SR-BCRS re-expresses the matrix at far lower density than BSR.
    lowest = densities[0]
    assert table[lowest]["SparseTIR(SR-BCRS)"] > table[lowest]["SparseTIR(BSR)"]
    assert formats[lowest]["SR-BCRS(8,32)"] < formats[lowest]["BSR(32)"]
    assert table[lowest]["SparseTIR(SR-BCRS)"] > 1.0
    # The dense GEMM catches up as density rises (crossover trend).
    assert table[densities[-1]]["SparseTIR(SR-BCRS)"] < table[lowest]["SparseTIR(SR-BCRS)"]
