"""Ablation benchmarks for the design choices called out in DESIGN.md.

* composable formats (hyb) on/off for SpMM — the Figure 13 ablation;
* composable transformations (vectorize + rfactor) on/off for SDDMM — the
  Figure 14 ablation;
* composable formats and tensorisation on/off for RGMS — the Figure 20
  ablation (naive vs hyb vs hyb+TC);
* horizontal fusion on/off — the kernel-launch overhead the Section 3.5 pass
  removes.
"""

import pytest

from repro.formats.hyb import HybFormat
from repro.ops.rgms import RGMSProblem, rgms_fused_hyb_workload, rgms_naive_workload
from repro.ops.sddmm import sddmm_workload
from repro.ops.spmm import spmm_csr_workload, spmm_hyb_workload
from repro.perf.gpu_model import GPUModel
from repro.workloads.graphs import synthetic_graph
from repro.workloads.hetero_graphs import synthetic_hetero_graph


@pytest.mark.figure("ablation-formats")
def test_ablation_composable_formats_spmm(benchmark, device):
    csr = synthetic_graph("ogbn-arxiv", seed=0).to_csr()
    model = GPUModel(device)

    def run():
        hyb = HybFormat.from_csr(csr, num_col_parts=1)
        return {
            "no-hyb": model.estimate(spmm_csr_workload(csr, 128, device)).duration_us,
            "hyb": model.estimate(spmm_hyb_workload(hyb, 128, device)).duration_us,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation (formats, {device.name}): no-hyb {result['no-hyb']:.1f} us, "
          f"hyb {result['hyb']:.1f} us -> {result['no-hyb'] / result['hyb']:.2f}x from decomposition")
    assert result["hyb"] < result["no-hyb"]


@pytest.mark.figure("ablation-transforms")
def test_ablation_composable_transformations_sddmm(benchmark, device):
    csr = synthetic_graph("ppi", seed=0).to_csr()
    model = GPUModel(device)

    def run():
        plain = model.estimate(
            sddmm_workload(csr, 256, device, vector_width=1, two_stage_reduction=False)
        ).duration_us
        vectorised = model.estimate(
            sddmm_workload(csr, 256, device, vector_width=4, two_stage_reduction=False)
        ).duration_us
        full = model.estimate(
            sddmm_workload(csr, 256, device, vector_width=4, two_stage_reduction=True)
        ).duration_us
        return {"plain": plain, "+vectorize": vectorised, "+rfactor": full}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation (transforms, {device.name}): plain {result['plain']:.1f} us, "
          f"+vectorize {result['+vectorize']:.1f} us, +rfactor {result['+rfactor']:.1f} us")
    assert result["+vectorize"] < result["plain"]
    assert result["+rfactor"] <= result["+vectorize"]


@pytest.mark.figure("ablation-rgms")
def test_ablation_rgms_formats_and_tensorisation(benchmark, device):
    graph = synthetic_hetero_graph("bgs", seed=0)
    problem = RGMSProblem(graph.adjacency, 32, 32)
    model = GPUModel(device)

    def run():
        return {
            "naive": model.estimate(rgms_naive_workload(problem, device)).duration_us,
            "hyb": model.estimate(
                rgms_fused_hyb_workload(problem, device, use_tensor_cores=False)
            ).duration_us,
            "hyb+TC": model.estimate(
                rgms_fused_hyb_workload(problem, device, use_tensor_cores=True)
            ).duration_us,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation (RGMS, {device.name}): naive {result['naive']:.1f} us, "
          f"hyb {result['hyb']:.1f} us, hyb+TC {result['hyb+TC']:.1f} us")
    assert result["hyb"] < result["naive"]
    assert result["hyb+TC"] < result["hyb"]


@pytest.mark.figure("ablation-fusion")
def test_ablation_horizontal_fusion(benchmark, device):
    csr = synthetic_graph("cora", seed=0).to_csr()
    model = GPUModel(device)

    def run():
        hyb = HybFormat.from_csr(csr, num_col_parts=2)
        fused = model.estimate(
            spmm_hyb_workload(hyb, 32, device, horizontal_fusion=True)
        ).duration_us
        unfused = model.estimate(
            spmm_hyb_workload(hyb, 32, device, horizontal_fusion=False)
        ).duration_us
        return {"fused": fused, "unfused": unfused, "buckets": len(hyb.buckets)}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation (horizontal fusion, {device.name}): {result['buckets']} bucket kernels, "
          f"unfused {result['unfused']:.1f} us vs fused {result['fused']:.1f} us")
    assert result["fused"] < result["unfused"]
