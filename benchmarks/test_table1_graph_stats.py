"""Table 1: statistics of the GNN graphs and the hyb %padding column."""

import pytest

from repro.formats.padding import padding_ratio_percent
from repro.workloads.graphs import available_graphs, synthetic_graph


@pytest.mark.figure("table1")
def test_table1_graph_statistics(benchmark):
    def build():
        rows = []
        for name in available_graphs():
            graph = synthetic_graph(name, seed=0)
            padding = padding_ratio_percent(graph.to_csr(), num_col_parts=1)
            rows.append((graph, padding))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\n=== Table 1: graphs used in GNN experiments (synthetic, scaled) ===")
    print(f"{'graph':<16}{'#nodes':>10}{'#edges':>12}{'%padding':>10}"
          f"{'paper nodes':>14}{'paper edges':>14}{'paper %pad':>12}{'scale':>8}")
    for graph, padding in rows:
        spec = graph.spec
        print(
            f"{graph.name:<16}{graph.num_nodes:>10}{graph.num_edges:>12}{padding:>10.1f}"
            f"{spec.paper_nodes:>14}{spec.paper_edges:>14}{spec.paper_padding_percent:>12.1f}"
            f"{spec.scale:>8.2f}"
        )

    # The synthetic graphs must preserve the statistics the experiments rely on.
    for graph, padding in rows:
        spec = graph.spec
        assert graph.num_nodes == spec.nodes
        assert abs(graph.num_edges - spec.edges) / spec.edges < 0.2
        # padding of the bucketed format stays in the paper's ballpark (4-35%)
        assert 0.0 <= padding < 60.0
