"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation: it builds the corresponding workloads, evaluates the SparseTIR
kernels and every baseline on the simulated devices, prints the same
rows/series the paper reports (normalised speedups, hit rates, memory
footprints) and records the end-to-end harness time with pytest-benchmark.
"""

import sys
from pathlib import Path
from typing import Dict, Sequence

import pytest

# Allow `import bench_helpers` regardless of how pytest was invoked.
sys.path.insert(0, str(Path(__file__).parent))

from repro.perf.device import RTX3070, V100


def pytest_configure(config):
    config.addinivalue_line("markers", "figure(name): benchmark reproducing one paper figure")


def pytest_collection_modifyitems(items):
    """Every test in this directory is a paper-benchmark harness.

    The ``bench`` marker lets CI run a fast default lane
    (``-m "not slow and not bench"``) and a full nightly lane.
    """
    for item in items:
        if "benchmarks" in str(item.fspath):
            item.add_marker(pytest.mark.bench)


@pytest.fixture(params=["V100", "RTX3070"], scope="session")
def device(request):
    """Both GPUs of the paper's evaluation."""
    return V100 if request.param == "V100" else RTX3070


@pytest.fixture(scope="session")
def devices():
    return [V100, RTX3070]


def print_speedup_table(
    title: str,
    rows: Sequence[str],
    columns: Sequence[str],
    values: Dict[str, Dict[str, float]],
    note: str = "",
) -> None:
    """Print a paper-style normalised-speedup table (rows = datasets)."""
    width = max(14, max(len(c) for c in columns) + 2)
    header = f"{'dataset':<16}" + "".join(f"{c:>{width}}" for c in columns)
    print(f"\n=== {title} ===")
    if note:
        print(note)
    print(header)
    for row in rows:
        line = f"{row:<16}"
        for column in columns:
            value = values.get(row, {}).get(column)
            line += f"{value:>{width}.2f}" if value is not None else f"{'-':>{width}}"
        print(line)
