"""Figure 23: sparse convolution speedup vs TorchSparse across channel sizes."""

import math

import pytest

from repro.baselines import torchsparse
from repro.ops.sparse_conv import sparse_conv_fused_tc_workload
from repro.perf.gpu_model import GPUModel
from repro.workloads.pointcloud import MINKOWSKINET_CHANNEL_SWEEP, PointCloudConfig, sparse_conv_problem

#: Paper trend (V100): ~2-4x at 32 channels, crossing below 1x above ~128.
PAPER_TREND = {32: 3.0, 64: 2.0, 128: 1.0, 256: 0.6}


@pytest.mark.figure("fig23")
def test_fig23_sparse_convolution(benchmark, device):
    config = PointCloudConfig(num_points=20000, voxel_size=0.4, seed=0)
    model = GPUModel(device)

    def run():
        series = {}
        for cin, cout in MINKOWSKINET_CHANNEL_SWEEP:
            problem = sparse_conv_problem(cin, cout, config)
            ours = model.estimate(sparse_conv_fused_tc_workload(problem, device)).duration_us
            baseline = model.estimate(torchsparse.sparse_conv_workload(problem, device)).duration_us
            series[int(math.sqrt(cin * cout))] = {
                "sparsetir_us": ours,
                "torchsparse_us": baseline,
                "speedup": baseline / ours,
                "points": problem.num_in_points,
            }
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\n=== Figure 23 ({device.name}): sparse convolution speedup vs TorchSparse ===")
    print(f"{'sqrt(Cin*Cout)':>15}{'SparseTIR (us)':>16}{'TorchSparse (us)':>18}{'speedup':>10}{'paper':>8}")
    for channels, row in sorted(series.items()):
        print(f"{channels:>15}{row['sparsetir_us']:>16.1f}{row['torchsparse_us']:>18.1f}"
              f"{row['speedup']:>10.2f}{PAPER_TREND.get(channels, float('nan')):>8.1f}")

    channels = sorted(series)
    speedups = [series[c]["speedup"] for c in channels]
    # Shape: SparseTIR wins at small channel counts; the advantage shrinks
    # monotonically (and eventually disappears) as the GEMM begins to dominate.
    assert speedups[0] > 1.0
    assert speedups[-1] < speedups[0]
    assert all(b <= a * 1.05 for a, b in zip(speedups, speedups[1:]))
