"""Figure 15: end-to-end GraphSAGE training speedup of PyTorch+SparseTIR vs DGL."""

import pytest

from repro.models.graphsage import estimate_training_time
from repro.workloads.graphs import synthetic_graph

#: Figure 15 uses all Table-1 graphs except ogbn-proteins (and Reddit only on V100).
GRAPHS = ("cora", "citeseer", "pubmed", "ppi", "ogbn-arxiv", "reddit")
FEATURE_SIZES = (64, 64, 16)  # input, hidden, classes (typical GraphSAGE set-up)

PAPER_SPEEDUP = {
    "V100": {"cora": 1.52, "citeseer": 1.49, "pubmed": 1.51, "ppi": 1.18,
             "ogbn-arxiv": 1.12, "reddit": 1.39},
    "RTX3070": {"cora": 1.47, "citeseer": 1.34, "pubmed": 1.19, "ppi": 1.08,
                "ogbn-arxiv": 1.14},
}


@pytest.mark.figure("fig15")
def test_fig15_graphsage_training_speedup(benchmark, device):
    graph_names = [g for g in GRAPHS if not (g == "reddit" and device.name == "RTX3070")]
    graphs = {name: synthetic_graph(name, seed=0).to_csr() for name in graph_names}

    def run():
        results = {}
        for name, csr in graphs.items():
            baseline = estimate_training_time(csr, FEATURE_SIZES, device, backend="dgl")
            ours = estimate_training_time(csr, FEATURE_SIZES, device, backend="sparsetir")
            results[name] = {
                "dgl_us": baseline.total_us,
                "sparsetir_us": ours.total_us,
                "speedup": baseline.total_us / ours.total_us,
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\n=== Figure 15 ({device.name}): GraphSAGE training, PyTorch+SparseTIR vs DGL ===")
    print(f"{'graph':<14}{'DGL (us/iter)':>16}{'SparseTIR (us)':>16}{'speedup':>10}{'paper':>8}")
    for name, row in results.items():
        paper = PAPER_SPEEDUP[device.name].get(name, float('nan'))
        print(f"{name:<14}{row['dgl_us']:>16.1f}{row['sparsetir_us']:>16.1f}"
              f"{row['speedup']:>10.2f}{paper:>8.2f}")

    # Shape: SparseTIR integration speeds up training everywhere, with modest
    # (Amdahl-limited) end-to-end factors as in the paper (1.08-1.52x).
    for name, row in results.items():
        assert row["speedup"] > 1.0
        assert row["speedup"] < 3.0
