"""Graph-level fusion wall-clock harness: fused vs unfused whole models.

The other benchmark modules measure single operators (or drive the GPU
performance model); this harness measures the *graph tentpole*: whole models
captured as dataflow graphs and compiled once with ``fuse=True`` and once
with ``fuse=False``.  Three model families cover the fusion patterns of the
paper's end-to-end workloads:

* **attention** — the SDDMM -> masked-softmax -> SpMM chain over a fig-13
  graph's edge structure (Section 4.3's sparse multi-head attention),
* **rgcn** — per-relation gather-matmul-scatter chains (one RGMS node per
  relation, chained by accumulating adds) over a fig-13 graph whose edges
  are partitioned into relations, the launch-per-relation dispatch a
  framework performs (Figure 20),
* **minkowski** — per-offset gather-GEMM-scatter batches of a sparse-conv
  backbone, the launch-per-offset execution of a TorchSparse-style runtime
  (Figure 23).

Methodology: fused and unfused graphs are measured in *interleaved paired
rounds* (warm both, then alternate batches) and the reported ratio is
``median(unfused) / median(fused)``.  Interleaving is deliberate: the two
compiled graphs co-reside in one process, and allocator/cache state drifts
over a run — back-to-back blocks of one variant pick up that drift as a
spurious 10-30% bias in either direction, while alternating batches sample
both variants under the same conditions.  Every workload also asserts the
acceptance contract: strictly fewer kernel launches fused than unfused
(equal when the planner declines a tier-demoting merge, as for attention's
softmax with a C toolchain present), and bit-exact (``np.array_equal``)
agreement between the two executions.

``test_graph_smoke`` runs scaled-down models for the CI ``graph-smoke`` lane
(writes ``BENCH_graph.smoke.json``); ``test_graph_full`` runs the fig-13
configurations above and commits ``BENCH_graph.json`` with a fused-speedup
geomean gate of 1.2x.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats.csf import CSFTensor
from repro.formats.csr import CSRMatrix
from repro.models.minkowski import MinkowskiBackbone
from repro.models.rgcn import RGCN
from repro.runtime.session import Session
from repro.workloads.attention import capture_sparse_attention
from repro.workloads.graphs import synthetic_graph
from repro.workloads.pointcloud import PointCloudConfig

_ROOT = Path(__file__).resolve().parent.parent
#: The committed perf-trajectory file; only the full-mode run writes it.
OUTPUT = _ROOT / "BENCH_graph.json"
#: Smoke runs write a sibling (gitignored) file so a local smoke run never
#: clobbers the committed full-mode numbers; CI renames it before upload.
SMOKE_OUTPUT = _ROOT / "BENCH_graph.smoke.json"

SMOKE_CONFIG = {
    "attention": [("cora", 2, 4)],          # graph, heads, head_dim
    "rgcn": [("cora", 8, 8)],               # graph, relations, feat
    "minkowski": [(300, 2, 8)],             # points, layers, channels
    "rounds": 5,
    "calls": 1,
}

FULL_CONFIG = {
    # GAT-style attention: 8 heads x 8 dims (64-wide features).
    "attention": [("cora", 8, 8), ("citeseer", 8, 8)],
    # Schlichtkrull hidden size 16; 64 relations sits between small and
    # AIFB-scale (91) heterographs.
    "rgcn": [("cora", 64, 16), ("citeseer", 64, 16)],
    # Four submanifold conv layers at 8 channels over two scan densities.
    "minkowski": [(1000, 4, 8), (1500, 4, 8)],
    "rounds": 9,
    "calls": 2,
}


def split_relations(csr: CSRMatrix, num_relations: int, seed: int = 0) -> CSFTensor:
    """Partition a graph's edges into relation slices (synthetic heterograph)."""
    rng = np.random.default_rng(seed)
    coo = csr.to_scipy().tocoo()
    rel = rng.integers(0, num_relations, size=coo.nnz)
    slices = []
    for r in range(num_relations):
        mask = rel == r
        mat = sp.coo_matrix(
            (coo.data[mask], (coo.row[mask], coo.col[mask])), shape=coo.shape
        ).tocsr()
        slices.append(CSRMatrix.from_scipy(mat))
    return CSFTensor((num_relations,) + coo.shape, slices)


def _paired_seconds(fused_fn, unfused_fn, rounds, calls):
    """Interleaved paired timing; returns (median fused, median unfused)."""
    fused_fn()
    unfused_fn()  # warm both: compile plans, fault in buffers
    fused_times, unfused_times = [], []
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(calls):
            fused_fn()
        fused_times.append((time.perf_counter() - start) / calls)
        start = time.perf_counter()
        for _ in range(calls):
            unfused_fn()
        unfused_times.append((time.perf_counter() - start) / calls)
    return float(np.median(fused_times)), float(np.median(unfused_times))


def _record(results, family, workload, fused, unfused, fused_name, unfused_name,
            rounds, calls):
    exact = np.array_equal(fused.run()[fused_name], unfused.run()[unfused_name])
    fused_s, unfused_s = _paired_seconds(
        lambda: fused.run(), lambda: unfused.run(), rounds, calls
    )
    entry = {
        "family": family,
        "workload": workload,
        "launches_fused": int(fused.num_kernel_launches),
        "launches_unfused": int(unfused.num_kernel_launches),
        "fused_s": fused_s,
        "unfused_s": unfused_s,
        "speedup_fused": unfused_s / fused_s,
        "bit_exact": bool(exact),
        # True when the planner kept the members as singletons because a
        # merge would have demoted native-capable kernels to the emitted
        # tier (e.g. attention's softmax pins the merged chain off the C
        # fragment); such rows execute identically fused and unfused.
        "fusion_declined": fused.num_nodes_fused == 0,
    }
    results.append(entry)
    print(
        f"{family:10s} {workload:28s} launches {entry['launches_fused']:3d} vs "
        f"{entry['launches_unfused']:3d}   fused {fused_s * 1e3:8.2f} ms   "
        f"x{entry['speedup_fused']:.2f} vs unfused   exact={exact}"
        + ("   (fusion declined: tier demotion)" if entry["fusion_declined"] else "")
    )
    if entry["fusion_declined"]:
        assert entry["launches_fused"] == entry["launches_unfused"]
    else:
        assert entry["launches_fused"] < entry["launches_unfused"]
    assert entry["bit_exact"]


def _run_suite(mode, config, output):
    results = []
    rounds, calls = config["rounds"], config["calls"]

    for graph_name, heads, head_dim in config["attention"]:
        mask = synthetic_graph(graph_name).csr
        rng = np.random.default_rng(3)
        shape = (heads, mask.rows, head_dim)
        q = rng.standard_normal(shape).astype(np.float32)
        k = rng.standard_normal(shape).astype(np.float32)
        v = rng.standard_normal(shape).astype(np.float32)
        session = Session(persistent=False)
        g1 = session.graph()
        out1 = capture_sparse_attention(g1, mask, q, k, v)
        g2 = session.graph()
        out2 = capture_sparse_attention(g2, mask, q, k, v)
        _record(results, "attention", f"{graph_name}-h{heads}-d{head_dim}",
                g1.compile(fuse=True), g2.compile(fuse=False),
                out1.name, out2.name, rounds, calls)

    for graph_name, relations, feat in config["rgcn"]:
        adjacency = split_relations(synthetic_graph(graph_name).csr, relations, seed=5)
        model = RGCN(adjacency, in_feats=feat, hidden=feat, num_classes=8, seed=1)
        x = np.random.default_rng(2).standard_normal(
            (adjacency.shape[1], feat)).astype(np.float32)
        session = Session(persistent=False)
        fused = model.compile(session, x, fuse=True)
        unfused = model.compile(session, x, fuse=False)
        _record(results, "rgcn", f"{graph_name}-R{relations}-d{feat}",
                fused.compiled, unfused.compiled,
                fused.output_name, unfused.output_name, rounds, calls)

    for points, layers, channels in config["minkowski"]:
        plan = [(channels, channels)] * layers
        model = MinkowskiBackbone(plan, config=PointCloudConfig(num_points=points, seed=4))
        x = np.random.default_rng(6).standard_normal(
            (model.layers[0].problem.num_in_points, channels)).astype(np.float32)
        session = Session(persistent=False)
        fused = model.compile(session, x, fuse=True)
        unfused = model.compile(session, x, fuse=False)
        _record(results, "minkowski", f"pts{points}-L{layers}-c{channels}",
                fused.compiled, unfused.compiled,
                fused.output_name, unfused.output_name, rounds, calls)

    speedups = [r["speedup_fused"] for r in results]
    payload = {
        "schema": 1,
        "harness": "benchmarks/test_graph_fusion.py",
        "mode": mode,
        "numpy": np.__version__,
        "methodology": "interleaved paired rounds; ratio = median(unfused)/median(fused)",
        "results": results,
        "summary": {
            "geomean_fused_speedup": float(np.exp(np.mean(np.log(speedups)))),
            "min_fused_speedup": float(min(speedups)),
            "max_fused_speedup": float(max(speedups)),
        },
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output} (geomean fused speedup: "
          f"x{payload['summary']['geomean_fused_speedup']:.2f})")
    return payload


@pytest.mark.figure("graph-fusion")
def test_graph_smoke():
    """Scaled-down models for the CI ``graph-smoke`` job (artifact upload).

    Smoke asserts the structural contract (fewer launches, bit-exact) but
    not the speedup gate: at toy sizes the ratio is noise-dominated.
    """
    payload = _run_suite("smoke", SMOKE_CONFIG, SMOKE_OUTPUT)
    assert SMOKE_OUTPUT.exists()
    for row in payload["results"]:
        assert row["fused_s"] > 0 and row["unfused_s"] > 0


@pytest.mark.slow
@pytest.mark.bench  # also auto-applied by benchmarks/conftest.py; explicit here
@pytest.mark.figure("graph-fusion")
def test_graph_full():
    """Fig-13-graph configurations; the committed ``BENCH_graph.json`` comes
    from this run.  Whole-model fused execution must beat node-at-a-time
    launches by >= 1.2x geomean across the three model families."""
    payload = _run_suite("full", FULL_CONFIG, OUTPUT)
    assert payload["summary"]["geomean_fused_speedup"] >= 1.2
