"""Figure 16: sparse-attention SpMM/SDDMM speedup vs Triton block-sparse."""

import pytest

from repro.baselines import triton
from repro.formats import BSRMatrix
from repro.ops.batched import (
    batched_sddmm_bsr_workload,
    batched_sddmm_csr_workload,
    batched_spmm_bsr_workload,
    batched_spmm_csr_workload,
)
from repro.perf.gpu_model import GPUModel
from repro.workloads.attention import AttentionConfig, band_mask, butterfly_mask

PAPER = {
    "V100": {"spmm": {"butterfly": 1.61, "longformer": 1.59},
             "sddmm": {"butterfly": 1.56, "longformer": 1.50}},
    "RTX3070": {"spmm": {"butterfly": 1.05, "longformer": 1.09},
                "sddmm": {"butterfly": 2.88, "longformer": 2.98}},
}


@pytest.mark.figure("fig16")
def test_fig16_sparse_attention_operators(benchmark, device):
    config = AttentionConfig()  # 4096 sequence, 12 heads, band 256, head dim 64
    masks = {
        "longformer": band_mask(config.seq_len, config.band_size, config.block_size),
        "butterfly": butterfly_mask(config.seq_len, config.block_size),
    }
    model = GPUModel(device)

    def run():
        table = {}
        for pattern, mask in masks.items():
            bsr = BSRMatrix.from_csr(mask, config.block_size)
            args = (config.head_dim, config.num_heads, device)
            spmm_triton = model.estimate(triton.blocksparse_spmm_workload(bsr, *args)).duration_us
            sddmm_triton = model.estimate(triton.blocksparse_sddmm_workload(bsr, *args)).duration_us
            table[pattern] = {
                "spmm": {
                    "Triton": 1.0,
                    "SparseTIR-CSR": spmm_triton
                    / model.estimate(batched_spmm_csr_workload(mask, *args)).duration_us,
                    "SparseTIR-BSR": spmm_triton
                    / model.estimate(batched_spmm_bsr_workload(bsr, *args)).duration_us,
                },
                "sddmm": {
                    "Triton": 1.0,
                    "SparseTIR-CSR": sddmm_triton
                    / model.estimate(batched_sddmm_csr_workload(mask, *args)).duration_us,
                    "SparseTIR-BSR": sddmm_triton
                    / model.estimate(batched_sddmm_bsr_workload(bsr, *args)).duration_us,
                },
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\n=== Figure 16 ({device.name}): sparse attention speedup vs Triton ===")
    print(f"{'pattern':<14}{'operator':<12}{'Triton':>8}{'TIR-CSR':>10}{'TIR-BSR':>10}{'paper BSR':>11}")
    for pattern, ops in table.items():
        for op_name, row in ops.items():
            paper = PAPER[device.name][op_name][pattern]
            print(f"{pattern:<14}{op_name:<12}{row['Triton']:>8.2f}{row['SparseTIR-CSR']:>10.2f}"
                  f"{row['SparseTIR-BSR']:>10.2f}{paper:>11.2f}")

    for pattern, ops in table.items():
        # BSR + tensorisation beats Triton; scalar CSR is an order of magnitude slower.
        assert ops["spmm"]["SparseTIR-BSR"] > 1.0
        assert ops["sddmm"]["SparseTIR-BSR"] > 1.0
        assert ops["spmm"]["SparseTIR-CSR"] < 0.3
