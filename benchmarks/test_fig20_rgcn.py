"""Figure 20: end-to-end RGCN inference speedup vs Graphiler and memory footprint."""

import pytest

from repro.models.rgcn import RGCN_SYSTEMS, rgcn_speedup_table
from repro.workloads.hetero_graphs import available_hetero_graphs, synthetic_hetero_graph

FEAT_SIZE = 32

PAPER_HYB_TC_SPEEDUP_V100 = {
    "aifb": 40.2, "mutag": 27.7, "bgs": 17.8, "ogbl-biokg": 8.6, "am": 4.3,
}


@pytest.mark.figure("fig20")
def test_fig20_rgcn_inference(benchmark, device):
    graphs = {name: synthetic_hetero_graph(name, seed=0) for name in available_hetero_graphs()}

    def run():
        table = {}
        for name, graph in graphs.items():
            table[name] = rgcn_speedup_table(graph.adjacency, FEAT_SIZE, device)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\n=== Figure 20 ({device.name}): RGCN inference speedup vs Graphiler ===")
    print(f"{'graph':<12}" + "".join(f"{s:>18}" for s in RGCN_SYSTEMS) + f"{'paper hyb+TC':>14}")
    for name, estimates in table.items():
        base = estimates["graphiler"].duration_us
        line = f"{name:<12}"
        for system in RGCN_SYSTEMS:
            line += f"{base / estimates[system].duration_us:>18.2f}"
        line += f"{PAPER_HYB_TC_SPEEDUP_V100.get(name, float('nan')):>14.1f}"
        print(line)

    print("\n--- GPU memory footprint (MiB) ---")
    print(f"{'graph':<12}" + "".join(f"{s:>18}" for s in RGCN_SYSTEMS))
    for name, estimates in table.items():
        line = f"{name:<12}"
        for system in RGCN_SYSTEMS:
            line += f"{estimates[system].memory_footprint_bytes / 2**20:>18.1f}"
        print(line)

    for name, estimates in table.items():
        base = estimates["graphiler"].duration_us
        hyb_tc = estimates["sparsetir_hyb_tc"]
        # SparseTIR(hyb+TC) delivers a clear speedup over Graphiler...
        assert base / hyb_tc.duration_us > 1.5
        # ...both composability mechanisms contribute...
        assert hyb_tc.duration_us < estimates["sparsetir_hyb"].duration_us
        assert estimates["sparsetir_hyb"].duration_us < estimates["sparsetir_naive"].duration_us
        # ...and the fused kernel avoids the materialised intermediate.
        assert hyb_tc.memory_footprint_bytes < estimates["graphiler"].memory_footprint_bytes
