"""Serving throughput harness: coalesced batching vs sequential eager.

This harness measures the *serving tentpole*: the claim that answering a
burst of same-structure requests through the coalescing
:class:`~repro.serve.Server` (one ``batched_spmm`` launch per group) beats
answering them one-by-one through eager :meth:`Session.spmm` calls.  The
claim is process-level: one Python process, the batch axis is the
multi-head axis of the generated kernel, and the win comes from
amortising per-request dispatch over one vectorized multi-lane launch —
no GPU parallelism is simulated or implied.

Methodology: each workload issues *waves* of N requests over a fig-13
graph.  Served and eager waves run in interleaved paired rounds (warm
both, then alternate) so allocator/cache drift biases neither side, and
both modes report *wave-offered* latency — request ``i``'s latency is
``done_i - wave_start`` in both modes, i.e. latency as offered load sees
it, which charges the eager mode for the queueing delay its serialism
causes.  Per round: throughput = N / (last completion - wave start);
p99 = 99th percentile of the wave's offered latencies.  Reported numbers
are medians over rounds; the headline ratio is
``median(served rps) / median(eager rps)``; every wave's served results
are asserted bit-exact against eager on the same inputs.

Batching is not free at every size: past roughly 1.5M total lanes the
coalesced working set falls out of cache and batching loses to eager —
the server's lane budget chunks groups to stay inside the winning regime,
and the configurations below exercise exactly the burst shapes serving
coalesces in practice (small-to-medium graphs, narrow features).

``test_serving_smoke`` runs one scaled-down workload for the CI
``serve-smoke`` lane (writes ``BENCH_serving.smoke.json``);
``test_serving_full`` commits ``BENCH_serving.json`` with a served-speedup
geomean gate of 1.2x.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.runtime.session import Session
from repro.serve import Server, ServerConfig
from repro.workloads.graphs import synthetic_graph

_ROOT = Path(__file__).resolve().parent.parent
#: The committed perf-trajectory file; only the full-mode run writes it.
OUTPUT = _ROOT / "BENCH_serving.json"
#: Smoke runs write a sibling (gitignored) file so a local smoke run never
#: clobbers the committed full-mode numbers; CI renames it before upload.
SMOKE_OUTPUT = _ROOT / "BENCH_serving.smoke.json"

SMOKE_CONFIG = {
    # graph, feat, requests per wave, max_batch
    "workloads": [("cora", 4, 16, 16)],
    "rounds": 3,
}

FULL_CONFIG = {
    # Burst shapes in the coalescing win regime (see module docstring):
    # small/medium fig-13 graphs, narrow features, 32-request waves.  The
    # per-workload max_batch keeps each launch inside its graph's lane
    # budget (pubmed's nnz is ~8x cora's, so its groups stay smaller).
    "workloads": [
        ("cora", 4, 32, 16),
        ("cora", 8, 32, 8),
        ("citeseer", 4, 32, 16),
        ("citeseer", 8, 32, 8),
        ("pubmed", 4, 16, 8),
    ],
    "rounds": 7,
}


def _eager_wave(session, csr, feats):
    """One sequential wave; returns (outputs, wave seconds, offered latencies)."""
    wave_start = time.perf_counter()
    outs, latencies = [], []
    for x in feats:
        outs.append(session.spmm(csr, x, dtype="float32"))
        latencies.append(time.perf_counter() - wave_start)
    return outs, latencies[-1], latencies


def _served_wave(server, csr, feats):
    """One concurrent wave through the server (all requests offered at once)."""
    done = [None] * len(feats)
    futures = []
    wave_start = time.perf_counter()
    for i, x in enumerate(feats):
        future = server.spmm(csr, x)
        future.add_done_callback(
            lambda _f, i=i: done.__setitem__(i, time.perf_counter())
        )
        futures.append(future)
    outs = [future.result(timeout=300) for future in futures]
    # done callbacks fire on the batcher thread right after resolution; wait
    # out the tiny race between result() returning and the stamp landing.
    deadline = time.monotonic() + 10.0
    while any(stamp is None for stamp in done) and time.monotonic() < deadline:
        time.sleep(0.0005)
    latencies = [stamp - wave_start for stamp in done]
    return outs, max(latencies), latencies


def _bench_workload(graph_name, feat, requests, max_batch, rounds):
    csr = synthetic_graph(graph_name).csr
    rng = np.random.default_rng(42)
    feats = [rng.standard_normal((csr.cols, feat)).astype(np.float32) for _ in range(requests)]
    eager_session = Session(persistent=False)
    server = Server(
        session=Session(persistent=False),
        config=ServerConfig(linger_s=0.001, max_batch=max_batch),
    )
    try:
        # Warm both modes: compile kernels, fault in buffers.
        served_outs, _, _ = _served_wave(server, csr, feats)
        eager_outs, _, _ = _eager_wave(eager_session, csr, feats)
        exact = all(
            np.array_equal(s, e) for s, e in zip(served_outs, eager_outs)
        )
        served_s, eager_s, served_p99, eager_p99 = [], [], [], []
        for _ in range(rounds):
            outs, wave_s, lats = _served_wave(server, csr, feats)
            served_s.append(wave_s)
            served_p99.append(float(np.percentile(lats, 99)))
            exact = exact and all(
                np.array_equal(s, e) for s, e in zip(outs, eager_outs)
            )
            _, wave_s, lats = _eager_wave(eager_session, csr, feats)
            eager_s.append(wave_s)
            eager_p99.append(float(np.percentile(lats, 99)))
        snap = server.snapshot()["default"]
    finally:
        server.close()
    served_rps = requests / float(np.median(served_s))
    eager_rps = requests / float(np.median(eager_s))
    return {
        "workload": f"{graph_name}-f{feat}-n{requests}",
        "graph": graph_name,
        "nnz": int(csr.nnz),
        "feat": feat,
        "requests": requests,
        "served_rps": served_rps,
        "eager_rps": eager_rps,
        "speedup_rps": served_rps / eager_rps,
        "served_p99_ms": float(np.median(served_p99)) * 1e3,
        "eager_p99_ms": float(np.median(eager_p99)) * 1e3,
        "p99_ratio": float(np.median(eager_p99)) / float(np.median(served_p99)),
        "mean_occupancy": snap["mean_occupancy"],
        "bit_exact": bool(exact),
    }


def _run_suite(mode, config, output):
    results = []
    for graph_name, feat, requests, max_batch in config["workloads"]:
        entry = _bench_workload(graph_name, feat, requests, max_batch, config["rounds"])
        results.append(entry)
        print(
            f"{entry['workload']:20s} served {entry['served_rps']:8.0f} req/s  "
            f"x{entry['speedup_rps']:.2f} vs eager   p99 {entry['served_p99_ms']:7.2f} ms "
            f"(eager {entry['eager_p99_ms']:7.2f})   occ {entry['mean_occupancy']:.1f}  "
            f"exact={entry['bit_exact']}"
        )
        assert entry["bit_exact"], entry["workload"]
        assert entry["mean_occupancy"] and entry["mean_occupancy"] > 1.0
    speedups = [r["speedup_rps"] for r in results]
    payload = {
        "schema": 1,
        "harness": "benchmarks/test_serving.py",
        "mode": mode,
        "numpy": np.__version__,
        "methodology": (
            "interleaved paired waves; wave-offered latency (done_i - wave_start) "
            "in both modes; ratio = median(served rps)/median(eager rps); "
            "process-level batching only"
        ),
        "results": results,
        "summary": {
            "geomean_served_speedup": float(np.exp(np.mean(np.log(speedups)))),
            "min_served_speedup": float(min(speedups)),
            "max_served_speedup": float(max(speedups)),
        },
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output} (geomean served speedup: "
          f"x{payload['summary']['geomean_served_speedup']:.2f})")
    return payload


@pytest.mark.figure("serving")
def test_serving_smoke():
    """One scaled-down wave for the CI ``serve-smoke`` job (artifact upload).

    Smoke asserts the serving contract (bit-exact, coalescing actually
    happened) but not the speedup gate: at toy sizes the ratio is
    noise-dominated.
    """
    payload = _run_suite("smoke", SMOKE_CONFIG, SMOKE_OUTPUT)
    assert SMOKE_OUTPUT.exists()
    for row in payload["results"]:
        assert row["served_rps"] > 0 and row["eager_rps"] > 0


@pytest.mark.slow
@pytest.mark.bench  # also auto-applied by benchmarks/conftest.py; explicit here
@pytest.mark.figure("serving")
def test_serving_full():
    """Fig-13-graph burst workloads; the committed ``BENCH_serving.json``
    comes from this run.  Coalesced serving must beat sequential eager by
    >= 1.2x geomean requests/s across the workloads."""
    payload = _run_suite("full", FULL_CONFIG, OUTPUT)
    assert payload["summary"]["geomean_served_speedup"] >= 1.2
