"""Figure 14: SDDMM speedup over the DGL/FeatGraph baseline."""

import pytest

from bench_helpers import FEATURE_SIZES, geomean, sddmm_system_durations
from conftest import print_speedup_table
from repro.workloads.graphs import available_graphs, synthetic_graph

SYSTEMS = ("cuSPARSE", "Sputnik", "DGL", "dgSPARSE-csr", "dgSPARSE-coo", "TACO", "SparseTIR")

#: Paper-reported SparseTIR speedups vs the DGL baseline (V100 row of Fig 14).
PAPER_SPARSETIR_SPEEDUP_V100 = {
    "cora": 1.5, "citeseer": 1.4, "pubmed": 1.5, "ppi": 2.3,
    "ogbn-arxiv": 1.6, "ogbn-proteins": 2.1, "reddit": 1.9,
}


@pytest.mark.figure("fig14")
def test_fig14_sddmm_speedup_vs_featgraph(benchmark, device):
    graphs = {name: synthetic_graph(name, seed=0) for name in available_graphs()}

    def run():
        table = {}
        for name, graph in graphs.items():
            csr = graph.to_csr()
            speedups = {system: [] for system in SYSTEMS}
            for feat in FEATURE_SIZES:
                durations = sddmm_system_durations(csr, feat, device)
                base = durations["DGL"]
                for system in SYSTEMS:
                    speedups[system].append(base / durations[system])
            table[name] = {system: geomean(values) for system, values in speedups.items()}
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_speedup_table(
        f"Figure 14 ({device.name}): SDDMM geomean speedup vs DGL (FeatGraph)",
        list(graphs), SYSTEMS, table,
        note="paper reports 1.4-2.3x for SparseTIR on V100; vendor libraries near zero",
    )
    if device.name == "V100":
        print("paper SparseTIR reference:", PAPER_SPARSETIR_SPEEDUP_V100)

    for name, row in table.items():
        # SparseTIR (vectorised loads + rfactor via composable transformations)
        # beats the FeatGraph baseline everywhere...
        assert row["SparseTIR"] > 1.0
        # ...and the general-purpose vendor SDDMM collapses on hyper-sparse graphs.
        assert row["cuSPARSE"] < row["SparseTIR"]
